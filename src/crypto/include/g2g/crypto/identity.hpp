// Node identities and authority-signed certificates.
//
// The paper's trust model: every node holds a key pair whose public key is
// signed by an authority trusted by all nodes; the authority is never used
// online. Certificates are exchanged at contact start to authenticate both
// endpoints before the session key is derived.
#pragma once

#include <optional>

#include "g2g/crypto/suite.hpp"
#include "g2g/util/bytes.hpp"
#include "g2g/util/ids.hpp"

namespace g2g::crypto {

struct SealedBox;  // sealed_box.hpp

/// Binding (node id, public key) signed by the authority.
struct Certificate {
  NodeId node;
  Bytes public_key;
  Bytes authority_signature;

  /// Canonical bytes covered by the authority signature.
  [[nodiscard]] Bytes signed_payload() const;
  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static Certificate decode(BytesView b);
};

/// Offline certification authority. Only used at network setup.
class Authority {
 public:
  Authority(SuitePtr suite, Rng& rng);

  [[nodiscard]] Certificate issue(NodeId node, BytesView public_key) const;
  [[nodiscard]] const Bytes& public_key() const { return keys_.public_key; }

 private:
  SuitePtr suite_;
  KeyPair keys_;
};

/// Verify a certificate against the authority public key.
[[nodiscard]] bool check_certificate(const Suite& suite, BytesView authority_public_key,
                                     const Certificate& cert);

/// A node's long-term cryptographic identity: key pair + certificate.
class NodeIdentity {
 public:
  NodeIdentity(SuitePtr suite, NodeId node, const Authority& authority, Rng& rng);

  [[nodiscard]] NodeId node() const { return node_; }
  [[nodiscard]] const Certificate& certificate() const { return cert_; }
  [[nodiscard]] const Bytes& public_key() const { return keys_.public_key; }
  [[nodiscard]] const Suite& suite() const { return *suite_; }

  [[nodiscard]] Bytes sign(BytesView message) const;
  [[nodiscard]] bool verify_from(const Certificate& peer, BytesView message,
                                 BytesView signature) const;
  [[nodiscard]] Bytes shared_secret_with(BytesView peer_public_key) const;
  /// Decrypt a sealed box addressed to this identity (see sealed_box.hpp).
  [[nodiscard]] Bytes open_box(const SealedBox& box) const;

 private:
  SuitePtr suite_;
  NodeId node_;
  KeyPair keys_;
  Certificate cert_;
};

}  // namespace g2g::crypto
