// Memoizing wrapper around a signature suite.
//
// In a G2G run the same signature is checked many times: every node that
// receives a gossiped PoM re-verifies the embedded declarations, PoR chains
// are audited by giver and taker, and certificates travel with every
// handshake. Verification is pure — same (pubkey, message, signature) in,
// same verdict out — so a per-run memo answers the repeats in one table
// lookup. Shared secrets are cached the same way (key agreement is also
// pure in its two keys).
//
// The wrapper is semantically invisible: verdicts, signatures, and key
// material are bit-identical with the cache on or off, and the protocol's
// *cost model* (proto::NodeCosts verification counts) is charged by the node
// layer before the suite is consulted, so simulated energy accounting does
// not change either. The only observable difference is wall clock and the
// fastpath.* counters, which core::to_json(ExperimentResult) excludes for
// exactly that reason.
//
// Not thread-safe: each Network owns a private instance (one simulation runs
// on one thread; the sweep pool parallelizes across runs, not within one).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "g2g/crypto/sha256.hpp"
#include "g2g/crypto/suite.hpp"

namespace g2g::crypto {

class CachingSuite final : public Suite {
 public:
  struct Stats {
    std::uint64_t verify_hits = 0;
    std::uint64_t verify_misses = 0;
    std::uint64_t secret_hits = 0;
    std::uint64_t secret_misses = 0;
  };

  explicit CachingSuite(SuitePtr inner);

  [[nodiscard]] KeyPair keygen(Rng& rng) const override;
  [[nodiscard]] Bytes sign(BytesView secret_key, BytesView message) const override;
  [[nodiscard]] bool verify(BytesView public_key, BytesView message,
                            BytesView signature) const override;
  void verify_batch(std::span<const VerifyRequest> requests, bool* verdicts) const override;
  [[nodiscard]] Bytes shared_secret(BytesView my_secret_key,
                                    BytesView peer_public_key) const override;
  [[nodiscard]] std::size_t signature_size() const override;
  // Reports the inner suite's name: the cache must be invisible everywhere a
  // result could be serialized or compared.
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const SuitePtr& inner() const { return inner_; }

 private:
  struct DigestHash {
    std::size_t operator()(const Digest& d) const;
  };

  SuitePtr inner_;
  mutable std::unordered_map<Digest, bool, DigestHash> verify_cache_;
  mutable std::unordered_map<Digest, Bytes, DigestHash> secret_cache_;
  mutable Stats stats_;
};

/// Wrap `inner` in a fresh cache. Returns the concrete type so callers can
/// read stats(); it is also a SuitePtr-compatible Suite.
[[nodiscard]] std::shared_ptr<CachingSuite> make_caching_suite(SuitePtr inner);

}  // namespace g2g::crypto
