// SHA-256 (FIPS 180-4). Used for message digests H(m), session transcripts,
// and as the compression core of HMAC and the heavy HMAC challenge.
#pragma once

#include <array>
#include <cstdint>

#include "g2g/util/bytes.hpp"

namespace g2g::crypto {

inline constexpr std::size_t kSha256DigestSize = 32;
using Digest = std::array<std::uint8_t, kSha256DigestSize>;

/// Incremental SHA-256 context.
class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(BytesView data);
  /// Finalize and return the digest. The context must be reset() before reuse.
  [[nodiscard]] Digest finish();

 private:
  void compress(const std::uint8_t block[64]);
  // Processes `count` consecutive 64-byte blocks; dispatches to the SHA-NI
  // hardware rounds when available (bit-identical to the scalar loop).
  void compress_many(const std::uint8_t* blocks, std::size_t count);

  std::array<std::uint32_t, 8> state_{};
  std::uint64_t length_ = 0;  // total bytes fed
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
};

/// One-shot digest.
[[nodiscard]] Digest sha256(BytesView data);
/// Digest of the concatenation a || b (avoids an allocation).
[[nodiscard]] Digest sha256(BytesView a, BytesView b);

[[nodiscard]] inline BytesView digest_view(const Digest& d) {
  return BytesView(d.data(), d.size());
}
[[nodiscard]] inline Bytes digest_bytes(const Digest& d) {
  return Bytes(d.begin(), d.end());
}

}  // namespace g2g::crypto
