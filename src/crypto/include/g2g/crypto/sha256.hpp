// SHA-256 (FIPS 180-4). Used for message digests H(m), session transcripts,
// and as the compression core of HMAC and the heavy HMAC challenge.
#pragma once

#include <array>
#include <cstdint>

#include "g2g/util/bytes.hpp"

namespace g2g::crypto {

inline constexpr std::size_t kSha256DigestSize = 32;
using Digest = std::array<std::uint8_t, kSha256DigestSize>;

/// Initial chaining value H(0) from FIPS 180-4. Exposed for callers that
/// drive raw compression states directly (the multi-lane heavy-HMAC batch).
inline constexpr std::array<std::uint32_t, 8> kSha256InitState = {
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
    0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

/// Maximum number of independent lanes sha256_compress_multi runs in lockstep.
inline constexpr std::size_t kSha256MaxLanes = 4;

/// Backend selection for sha256_compress_multi. kAuto picks the fastest
/// available path (interleaved SHA-NI chains, then the AVX2 4-lane SIMD
/// kernel, then the scalar loop); the explicit values let the differential
/// tests force each backend. Forcing a backend the CPU lacks silently runs
/// the scalar loop — check sha256_multi_backend_available() first.
enum class Sha256MultiBackend { kAuto, kShaNi, kAvx2, kScalar };

[[nodiscard]] bool sha256_multi_backend_available(Sha256MultiBackend backend);

/// Compress `blocks_per_lane` consecutive 64-byte blocks into each of `lanes`
/// independent chaining states (lanes <= kSha256MaxLanes). states[l] points
/// at 8 state words; blocks[l] at 64 * blocks_per_lane bytes. All backends
/// are bit-identical to running the scalar FIPS 180-4 rounds per lane; kAuto
/// honours the global fast-path switch (reference = scalar loop).
void sha256_compress_multi(std::uint32_t* const* states, const std::uint8_t* const* blocks,
                           std::size_t lanes, std::size_t blocks_per_lane = 1,
                           Sha256MultiBackend backend = Sha256MultiBackend::kAuto);

/// Incremental SHA-256 context.
class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(BytesView data);
  /// Finalize and return the digest. The context must be reset() before reuse.
  [[nodiscard]] Digest finish();

 private:
  void compress(const std::uint8_t block[64]);
  // Processes `count` consecutive 64-byte blocks; dispatches to the SHA-NI
  // hardware rounds when available (bit-identical to the scalar loop).
  void compress_many(const std::uint8_t* blocks, std::size_t count);

  std::array<std::uint32_t, 8> state_{};
  std::uint64_t length_ = 0;  // total bytes fed
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
};

/// One-shot digest.
[[nodiscard]] Digest sha256(BytesView data);
/// Digest of the concatenation a || b (avoids an allocation).
[[nodiscard]] Digest sha256(BytesView a, BytesView b);

[[nodiscard]] inline BytesView digest_view(const Digest& d) {
  return BytesView(d.data(), d.size());
}
[[nodiscard]] inline Bytes digest_bytes(const Digest& d) {
  return Bytes(d.begin(), d.end());
}

}  // namespace g2g::crypto
