// Pluggable signature/key-agreement suite.
//
// Two implementations:
//  * SchnorrSuite — the real public-key path (schnorr.hpp). Used by default in
//    examples, unit tests and the crypto micro-benches.
//  * FastSuite — a symmetric emulation for large simulation sweeps: a
//    "signature" is HMAC(K_pub, msg) where K_pub = HMAC(suite_seed, pub) is a
//    per-key MAC key derivable only through the suite (which plays the role of
//    the unforgeability assumption). Protocol code cannot forge signatures it
//    did not legitimately produce, which is exactly the property the paper's
//    mechanisms rely on, at a tiny fraction of the CPU cost.
//
// Protocol code is written against this interface only.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "g2g/crypto/chacha20.hpp"
#include "g2g/util/bytes.hpp"
#include "g2g/util/rng.hpp"

namespace g2g::crypto {

struct KeyPair {
  Bytes secret_key;
  Bytes public_key;
};

/// One verification job for Suite::verify_batch. The views must stay valid for
/// the duration of the call.
struct VerifyRequest {
  // g2g-lint: allow(view-escape) -- borrowed for the duration of one verify_batch call
  BytesView public_key;
  // g2g-lint: allow(view-escape) -- borrowed for the duration of one verify_batch call
  BytesView message;
  // g2g-lint: allow(view-escape) -- borrowed for the duration of one verify_batch call
  BytesView signature;
};

/// Abstract signature + key-agreement suite (stateless, shareable).
class Suite {
 public:
  virtual ~Suite() = default;

  [[nodiscard]] virtual KeyPair keygen(Rng& rng) const = 0;
  [[nodiscard]] virtual Bytes sign(BytesView secret_key, BytesView message) const = 0;
  [[nodiscard]] virtual bool verify(BytesView public_key, BytesView message,
                                    BytesView signature) const = 0;
  /// Verify a batch of signatures, writing one verdict per request.
  /// `verdicts` must have room for `requests.size()` entries. The default
  /// simply loops over verify(); overrides use the batch shape to amortize
  /// work. The caching suite answers repeats from its memo and forwards only
  /// the misses in one inner call; the (R, s)-form Schnorr suite folds the
  /// whole batch into one randomized multi-exponentiation and falls back to
  /// per-signature checks only when the combined equation rejects, so
  /// verdicts stay exact per request. (The classic e = H(r || m) form
  /// commits to the challenge and cannot be combined this way.)
  virtual void verify_batch(std::span<const VerifyRequest> requests, bool* verdicts) const {
    for (std::size_t i = 0; i < requests.size(); ++i) {
      verdicts[i] = verify(requests[i].public_key, requests[i].message,
                           requests[i].signature);
    }
  }
  /// Key agreement: both endpoints derive the same secret from
  /// (my secret, peer public). Feeds the session-key KDF.
  [[nodiscard]] virtual Bytes shared_secret(BytesView my_secret_key,
                                            BytesView peer_public_key) const = 0;
  [[nodiscard]] virtual std::size_t signature_size() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

using SuitePtr = std::shared_ptr<const Suite>;

struct SchnorrGroup;  // schnorr.hpp

/// Real Schnorr/DH suite over the given group (default_group() if omitted).
[[nodiscard]] SuitePtr make_schnorr_suite();
[[nodiscard]] SuitePtr make_schnorr_suite(const SchnorrGroup& group);
/// (R, s)-form Schnorr/DH suite: same keys, nonces and DH as the classic
/// suite, but signatures transmit the commitment R instead of the challenge,
/// which unlocks true randomized batch verification in verify_batch.
[[nodiscard]] SuitePtr make_schnorr_rs_suite();
[[nodiscard]] SuitePtr make_schnorr_rs_suite(const SchnorrGroup& group);
/// Symmetric emulation suite; `seed` is the suite-wide MAC-key seed.
[[nodiscard]] SuitePtr make_fast_suite(std::uint64_t seed = 0x4732674d41435353ULL);

/// Authenticated symmetric channel keys derived from a shared secret.
struct SessionKeys {
  ChaChaKey enc_key;
  ChaChaNonce nonce;
};

[[nodiscard]] SessionKeys derive_session_keys(BytesView shared_secret, BytesView transcript);

}  // namespace g2g::crypto
