// Montgomery-form arithmetic for U256 (R = 2^256) — the fast path behind
// the modular reductions that dominate Schnorr verification.
//
// A value x is represented in Montgomery form as x·R mod m; mont_mul
// computes a·b·R⁻¹ mod m with the CIOS (coarsely integrated operand
// scanning) word loop — one 64-bit multiply-accumulate pass and one
// reduction pass per limb, no 512-bit shift-subtract division. Converting
// in and out of the form costs one mont_mul each, so it pays off exactly
// where schnorr.cpp uses it: exponentiation chains and window tables that
// stay in the domain across hundreds of multiplies.
//
// Oracle policy (docs/TESTING.md): everything here is a fast path behind
// crypto::set_fast_path. The schoolbook shift-subtract reducer in
// uint256.cpp (mod / mul_mod / pow_mod) is the always-available reference,
// and the differential corpus in tests/crypto_fastpath_diff_test.cpp pins
// every routine below to it bit for bit.
//
// Contracts (enforced by the differential corpus, not by runtime checks):
//  * the modulus must be odd and > 1 — for_modulus throws otherwise;
//  * mont_mul requires at least one operand < m (the other may be any
//    U256); both < m is the normal case and what the chains maintain;
//  * to_mont accepts ANY U256 and reduces it (x ≥ m is folded to
//    x mod m — rr < m makes the CIOS bound absorb the excess);
//  * every result is the canonical representative in [0, m), which is what
//    makes the fast path byte-identical to the classic path.
#pragma once

#include "g2g/crypto/uint256.hpp"

namespace g2g::crypto {

/// Per-modulus precomputation for Montgomery arithmetic with R = 2^256.
struct MontgomeryParams {
  U256 m;                    ///< the (odd, > 1) modulus
  std::uint64_t n0inv = 0;   ///< -m⁻¹ mod 2⁶⁴ (Newton–Hensel inverse)
  U256 one;                  ///< R mod m — the Montgomery form of 1
  U256 rr;                   ///< R² mod m — to_mont's multiplier

  /// Precompute for `modulus`; throws std::invalid_argument unless the
  /// modulus is odd and > 1 (Montgomery reduction needs gcd(m, R) = 1).
  [[nodiscard]] static MontgomeryParams for_modulus(const U256& modulus);
};

/// CIOS Montgomery product a·b·R⁻¹ mod m. For Montgomery-form inputs ã, b̃
/// this is the Montgomery form of a·b. Requires at least one operand < m;
/// the result is canonical (< m).
[[nodiscard]] U256 mont_mul(const U256& a, const U256& b, const MontgomeryParams& params);

/// x·R mod m — enter the Montgomery domain. Accepts any U256; values ≥ m
/// are reduced (the result equals to_mont(mod(x, m), params)).
[[nodiscard]] U256 to_mont(const U256& x, const MontgomeryParams& params);

/// x·R⁻¹ mod m — leave the Montgomery domain. Requires x < m (every value
/// produced by mont_mul / to_mont qualifies); canonical result.
[[nodiscard]] U256 from_mont(const U256& x, const MontgomeryParams& params);

/// base^exp mod m over a Montgomery-form base, via the Montgomery ladder
/// (two mont_muls per exponent bit, no secret-dependent branch pattern).
/// `base_mont` must already be in the domain (< m); the result is in the
/// domain too — from_mont it to compare against pow_mod.
[[nodiscard]] U256 mont_pow(const U256& base_mont, const U256& exp,
                            const MontgomeryParams& params);

/// base^exp mod m through the Montgomery ladder when the fast path is on
/// and m is odd; the classic square-and-multiply pow_mod otherwise.
/// Byte-identical either way — this is the drop-in for pow_mod call sites
/// whose moduli are the (odd) group primes.
[[nodiscard]] U256 pow_mod_fast(const U256& base, const U256& exp, const U256& m);

}  // namespace g2g::crypto
