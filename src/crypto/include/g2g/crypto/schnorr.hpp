// Schnorr signatures over a prime-order subgroup of Z_p*.
//
// The paper assumes every node can sign messages with a certified public key
// (it suggests elliptic-curve signatures). We substitute a classic
// finite-field Schnorr scheme: identical protocol role (existentially
// unforgeable signatures for proofs of relay / misbehaviour, certificates),
// different group. Parameters are generated deterministically and are
// simulation-grade, NOT production-secure (see DESIGN.md).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "g2g/crypto/montgomery.hpp"
#include "g2g/crypto/sha256.hpp"
#include "g2g/crypto/uint256.hpp"
#include "g2g/util/bytes.hpp"
#include "g2g/util/rng.hpp"

namespace g2g::crypto {

/// Group parameters: p prime, q prime dividing p-1, g of order q.
struct SchnorrGroup {
  U256 p;
  U256 q;
  U256 g;

  /// Deterministically generate a fresh group: q a `q_bits` prime, p = q*m + 1
  /// a `p_bits` prime, g = h^((p-1)/q) != 1.
  [[nodiscard]] static SchnorrGroup generate(std::size_t p_bits, std::size_t q_bits,
                                             std::uint64_t seed);

  /// Lazily-generated default group (p: 256 bits, q: 160 bits, fixed seed).
  [[nodiscard]] static const SchnorrGroup& default_group();
  /// Smaller group (p: 128 bits, q: 96 bits) for cheap test sweeps.
  [[nodiscard]] static const SchnorrGroup& small_group();

  /// Sanity checks: p, q prime; q | p-1; g^q = 1; g != 1.
  [[nodiscard]] bool valid(Rng& rng) const;
};

struct SchnorrKeyPair {
  U256 secret;      ///< x in [1, q)
  U256 public_key;  ///< y = g^x mod p
};

struct SchnorrSignature {
  U256 e;  ///< challenge  e = H(r || m) mod q
  U256 s;  ///< response   s = (k - x*e) mod q

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static SchnorrSignature decode(BytesView b);
};

/// (R, s)-form Schnorr signature: transmits the commitment R = g^k instead of
/// the challenge e = H(R || m). Same (k, e, s) triple as SchnorrSignature for
/// the same secret/nonce — only the wire representation differs — but because
/// the verifier checks the group equation g^s * y^e == R directly (instead of
/// recomputing the hash from a reconstructed r), independent signatures can be
/// combined into one randomized multi-exponentiation (verify_batch_rs).
struct SchnorrSignatureRS {
  U256 r;  ///< commitment R = g^k mod p
  U256 s;  ///< response   s = (k - x*e) mod q, with e = H(R || m) mod q

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static SchnorrSignatureRS decode(BytesView b);
};

[[nodiscard]] SchnorrKeyPair schnorr_keygen(const SchnorrGroup& group, Rng& rng);
[[nodiscard]] SchnorrSignature schnorr_sign(const SchnorrGroup& group, const U256& secret,
                                            BytesView message, Rng& rng);
[[nodiscard]] bool schnorr_verify(const SchnorrGroup& group, const U256& public_key,
                                  BytesView message, const SchnorrSignature& sig);

[[nodiscard]] SchnorrSignatureRS schnorr_rs_sign(const SchnorrGroup& group, const U256& secret,
                                                 BytesView message, Rng& rng);
[[nodiscard]] bool schnorr_rs_verify(const SchnorrGroup& group, const U256& public_key,
                                     BytesView message, const SchnorrSignatureRS& sig);

/// Static Diffie–Hellman over the same group: both parties compute
/// g^(x_a * x_b); the result feeds the session-key KDF (chacha20.hpp).
[[nodiscard]] U256 dh_shared_secret(const SchnorrGroup& group, const U256& my_secret,
                                    const U256& peer_public);

/// Precomputed fixed-base exponentiation (4-bit windows):
/// table[w][d] = base^(d * 16^w) mod m, so pow(e) is one modular multiply per
/// non-zero hex digit of e — ~n/4 multiplies for an n-bit exponent instead of
/// the ~n squarings + ~n/2 multiplies of square-and-multiply. For an odd
/// modulus the windows are mirrored into Montgomery form and, while the
/// global fast path is on, pow() runs the whole digit chain in the domain
/// (one mont_mul per digit plus a final from_mont). Exact either way: the
/// result is bit-identical to pow_mod(base, e, m).
class FixedBaseTable {
 public:
  FixedBaseTable() = default;
  /// Builds windows covering exponents up to `exp_bits` bits.
  FixedBaseTable(const U256& base, const U256& modulus, std::size_t exp_bits);

  /// base^exponent mod m. The exponent must fit in the built windows
  /// (exponent.bit_length() <= exp_bits).
  [[nodiscard]] U256 pow(const U256& exponent) const;
  [[nodiscard]] std::size_t exp_bits() const { return 4 * windows_.size(); }
  [[nodiscard]] bool empty() const { return windows_.empty(); }

 private:
  U256 modulus_;
  std::vector<std::array<U256, 16>> windows_;
  // Montgomery mirror of windows_ (present iff the modulus is odd and > 1).
  // The classic windows_ are always built first, classically, so the
  // reference digit chain exists untouched when the fast path is off.
  std::optional<MontgomeryParams> mont_;
  std::vector<std::array<U256, 16>> mont_windows_;
};

/// One base/exponent pair for multi_exp.
struct MultiExpTerm {
  U256 base;
  U256 exponent;
};

/// Simultaneous multi-exponentiation: Π base_i^(exp_i) mod m with per-term
/// 4-bit window tables and one shared squaring chain scanned from the most
/// significant nibble down. Exact: bit-identical to folding pow_mod results
/// together with mul_mod.
[[nodiscard]] U256 multi_exp(std::span<const MultiExpTerm> terms, const U256& modulus);

/// One signature for SchnorrEngine::verify_batch_rs. `message` must stay
/// valid for the duration of the call.
struct SchnorrRSVerifyItem {
  U256 public_key;
  // g2g-lint: allow(view-escape) -- borrowed for the duration of one verify_batch_rs call
  BytesView message;
  SchnorrSignatureRS sig;
};

/// Per-group precomputation for the hot Schnorr operations: a fixed-base
/// table for g sized to exponents mod q (keygen's g^x, sign's g^k, verify's
/// g^s are all bounded by q), plus cached MontgomeryParams for p and q so
/// variable-base powers (y^e), modular products, and the batch combination
/// all run in Montgomery form. Produces byte-identical keys/signatures/
/// verdicts to the free functions above — the accelerators only change how
/// each canonical residue is computed. When the global fast path is off,
/// every operation falls back to the reference pow_mod/mul_mod route.
class SchnorrEngine {
 public:
  explicit SchnorrEngine(const SchnorrGroup& group);

  [[nodiscard]] const SchnorrGroup& group() const { return group_; }
  [[nodiscard]] SchnorrKeyPair keygen(Rng& rng) const;
  [[nodiscard]] SchnorrSignature sign(const U256& secret, BytesView message, Rng& rng) const;
  [[nodiscard]] bool verify(const U256& public_key, BytesView message,
                            const SchnorrSignature& sig) const;

  [[nodiscard]] SchnorrSignatureRS sign_rs(const U256& secret, BytesView message, Rng& rng) const;
  [[nodiscard]] bool verify_rs(const U256& public_key, BytesView message,
                               const SchnorrSignatureRS& sig) const;
  /// Randomized-linear-combination batch verification of (R, s) signatures:
  /// checks g^(Σ z_i·s_i) · Π y_i^(z_i·e_i) == Π R_i^(z_i) with deterministic
  /// 64-bit coefficients z_i derived Fiat–Shamir style from the batch
  /// transcript (so runs are reproducible). Returns true iff the combined
  /// equation holds — a cheating batch passes with probability ~2^-64 per
  /// coefficient. Returns false whenever ANY signature is structurally or
  /// cryptographically invalid; callers needing per-item verdicts fall back
  /// to verify_rs on reject. Empty batches vacuously verify.
  [[nodiscard]] bool verify_batch_rs(std::span<const SchnorrRSVerifyItem> items) const;

 private:
  [[nodiscard]] U256 pow_g(const U256& exponent) const;
  /// base^exponent mod p — Montgomery ladder when the fast path is on.
  [[nodiscard]] U256 pow_p(const U256& base, const U256& exponent) const;
  /// a*b mod p / mod q — one to_mont + one mont_mul when the fast path is on.
  [[nodiscard]] U256 mul_p(const U256& a, const U256& b) const;
  [[nodiscard]] U256 mul_q(const U256& a, const U256& b) const;

  SchnorrGroup group_;
  FixedBaseTable g_table_;
  // Cached per-modulus precomputations (engaged iff the modulus is odd, > 1).
  std::optional<MontgomeryParams> mont_p_;
  std::optional<MontgomeryParams> mont_q_;
};

}  // namespace g2g::crypto
