// Schnorr signatures over a prime-order subgroup of Z_p*.
//
// The paper assumes every node can sign messages with a certified public key
// (it suggests elliptic-curve signatures). We substitute a classic
// finite-field Schnorr scheme: identical protocol role (existentially
// unforgeable signatures for proofs of relay / misbehaviour, certificates),
// different group. Parameters are generated deterministically and are
// simulation-grade, NOT production-secure (see DESIGN.md).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "g2g/crypto/sha256.hpp"
#include "g2g/crypto/uint256.hpp"
#include "g2g/util/bytes.hpp"
#include "g2g/util/rng.hpp"

namespace g2g::crypto {

/// Group parameters: p prime, q prime dividing p-1, g of order q.
struct SchnorrGroup {
  U256 p;
  U256 q;
  U256 g;

  /// Deterministically generate a fresh group: q a `q_bits` prime, p = q*m + 1
  /// a `p_bits` prime, g = h^((p-1)/q) != 1.
  [[nodiscard]] static SchnorrGroup generate(std::size_t p_bits, std::size_t q_bits,
                                             std::uint64_t seed);

  /// Lazily-generated default group (p: 256 bits, q: 160 bits, fixed seed).
  [[nodiscard]] static const SchnorrGroup& default_group();
  /// Smaller group (p: 128 bits, q: 96 bits) for cheap test sweeps.
  [[nodiscard]] static const SchnorrGroup& small_group();

  /// Sanity checks: p, q prime; q | p-1; g^q = 1; g != 1.
  [[nodiscard]] bool valid(Rng& rng) const;
};

struct SchnorrKeyPair {
  U256 secret;      ///< x in [1, q)
  U256 public_key;  ///< y = g^x mod p
};

struct SchnorrSignature {
  U256 e;  ///< challenge  e = H(r || m) mod q
  U256 s;  ///< response   s = (k - x*e) mod q

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static SchnorrSignature decode(BytesView b);
};

[[nodiscard]] SchnorrKeyPair schnorr_keygen(const SchnorrGroup& group, Rng& rng);
[[nodiscard]] SchnorrSignature schnorr_sign(const SchnorrGroup& group, const U256& secret,
                                            BytesView message, Rng& rng);
[[nodiscard]] bool schnorr_verify(const SchnorrGroup& group, const U256& public_key,
                                  BytesView message, const SchnorrSignature& sig);

/// Static Diffie–Hellman over the same group: both parties compute
/// g^(x_a * x_b); the result feeds the session-key KDF (chacha20.hpp).
[[nodiscard]] U256 dh_shared_secret(const SchnorrGroup& group, const U256& my_secret,
                                    const U256& peer_public);

/// Precomputed fixed-base exponentiation (4-bit windows):
/// table[w][d] = base^(d * 16^w) mod m, so pow(e) is one modular multiply per
/// non-zero hex digit of e — ~n/4 multiplies for an n-bit exponent instead of
/// the ~n squarings + ~n/2 multiplies of square-and-multiply. Exact: the
/// result is bit-identical to pow_mod(base, e, m).
class FixedBaseTable {
 public:
  FixedBaseTable() = default;
  /// Builds windows covering exponents up to `exp_bits` bits.
  FixedBaseTable(const U256& base, const U256& modulus, std::size_t exp_bits);

  /// base^exponent mod m. The exponent must fit in the built windows
  /// (exponent.bit_length() <= exp_bits).
  [[nodiscard]] U256 pow(const U256& exponent) const;
  [[nodiscard]] std::size_t exp_bits() const { return 4 * windows_.size(); }
  [[nodiscard]] bool empty() const { return windows_.empty(); }

 private:
  U256 modulus_;
  std::vector<std::array<U256, 16>> windows_;
};

/// Per-group precomputation for the hot Schnorr operations: a fixed-base
/// table for g sized to exponents mod q (keygen's g^x, sign's g^k, verify's
/// g^s are all bounded by q). Produces byte-identical keys/signatures/
/// verdicts to the free functions above — the table only changes how the
/// power is computed. When the global fast path is off, every operation
/// falls back to the reference pow_mod route.
class SchnorrEngine {
 public:
  explicit SchnorrEngine(const SchnorrGroup& group);

  [[nodiscard]] const SchnorrGroup& group() const { return group_; }
  [[nodiscard]] SchnorrKeyPair keygen(Rng& rng) const;
  [[nodiscard]] SchnorrSignature sign(const U256& secret, BytesView message, Rng& rng) const;
  [[nodiscard]] bool verify(const U256& public_key, BytesView message,
                            const SchnorrSignature& sig) const;

 private:
  [[nodiscard]] U256 pow_g(const U256& exponent) const;

  SchnorrGroup group_;
  FixedBaseTable g_table_;
};

}  // namespace g2g::crypto
