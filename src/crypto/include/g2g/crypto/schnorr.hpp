// Schnorr signatures over a prime-order subgroup of Z_p*.
//
// The paper assumes every node can sign messages with a certified public key
// (it suggests elliptic-curve signatures). We substitute a classic
// finite-field Schnorr scheme: identical protocol role (existentially
// unforgeable signatures for proofs of relay / misbehaviour, certificates),
// different group. Parameters are generated deterministically and are
// simulation-grade, NOT production-secure (see DESIGN.md).
#pragma once

#include <cstdint>

#include "g2g/crypto/sha256.hpp"
#include "g2g/crypto/uint256.hpp"
#include "g2g/util/bytes.hpp"
#include "g2g/util/rng.hpp"

namespace g2g::crypto {

/// Group parameters: p prime, q prime dividing p-1, g of order q.
struct SchnorrGroup {
  U256 p;
  U256 q;
  U256 g;

  /// Deterministically generate a fresh group: q a `q_bits` prime, p = q*m + 1
  /// a `p_bits` prime, g = h^((p-1)/q) != 1.
  [[nodiscard]] static SchnorrGroup generate(std::size_t p_bits, std::size_t q_bits,
                                             std::uint64_t seed);

  /// Lazily-generated default group (p: 256 bits, q: 160 bits, fixed seed).
  [[nodiscard]] static const SchnorrGroup& default_group();
  /// Smaller group (p: 128 bits, q: 96 bits) for cheap test sweeps.
  [[nodiscard]] static const SchnorrGroup& small_group();

  /// Sanity checks: p, q prime; q | p-1; g^q = 1; g != 1.
  [[nodiscard]] bool valid(Rng& rng) const;
};

struct SchnorrKeyPair {
  U256 secret;      ///< x in [1, q)
  U256 public_key;  ///< y = g^x mod p
};

struct SchnorrSignature {
  U256 e;  ///< challenge  e = H(r || m) mod q
  U256 s;  ///< response   s = (k - x*e) mod q

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static SchnorrSignature decode(BytesView b);
};

[[nodiscard]] SchnorrKeyPair schnorr_keygen(const SchnorrGroup& group, Rng& rng);
[[nodiscard]] SchnorrSignature schnorr_sign(const SchnorrGroup& group, const U256& secret,
                                            BytesView message, Rng& rng);
[[nodiscard]] bool schnorr_verify(const SchnorrGroup& group, const U256& public_key,
                                  BytesView message, const SchnorrSignature& sig);

/// Static Diffie–Hellman over the same group: both parties compute
/// g^(x_a * x_b); the result feeds the session-key KDF (chacha20.hpp).
[[nodiscard]] U256 dh_shared_secret(const SchnorrGroup& group, const U256& my_secret,
                                    const U256& peer_public);

}  // namespace g2g::crypto
