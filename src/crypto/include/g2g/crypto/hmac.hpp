// HMAC-SHA256 (RFC 2104) and the paper's "heavy HMAC".
//
// The test phase of G2G Epidemic Forwarding challenges a relay that claims to
// still store message m with a random seed s; the relay must answer with a
// keyed MAC "designed ... to be heavy to compute" so that silently storing a
// message is never cheaper than relaying it. HeavyHmac implements that as an
// iterated HMAC chain whose iteration count is the energy-cost knob.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "g2g/crypto/sha256.hpp"
#include "g2g/util/arena.hpp"
#include "g2g/util/bytes.hpp"

namespace g2g::crypto {

/// One-shot HMAC-SHA256 over `data` with key `key`.
[[nodiscard]] Digest hmac_sha256(BytesView key, BytesView data);

/// Precomputed HMAC key: the SHA-256 states after absorbing the ipad/opad
/// blocks are saved once, so each MAC under the same key costs two block
/// compressions fewer than hmac_sha256 (which re-derives the pads per call).
/// Produces digests bit-identical to hmac_sha256(key, data).
class HmacKey {
 public:
  explicit HmacKey(BytesView key);

  [[nodiscard]] Digest mac(BytesView data) const;
  /// MAC of the concatenation a || b (avoids an allocation).
  [[nodiscard]] Digest mac(BytesView a, BytesView b) const;

 private:
  Sha256 inner_;  // state after the ipad block
  Sha256 outer_;  // state after the opad block
};

/// Iterated HMAC used as the storage-proof challenge.
///
/// heavy_hmac(m, s, n) = H_n where H_0 = HMAC(s, m) and
/// H_i = HMAC(s, H_{i-1} || m-digest). Each iteration re-keys from the seed so
/// the chain cannot be precomputed before the seed is revealed.
///
/// The default implementation reuses the precomputed seed key states and a
/// fixed chain buffer; `heavy_hmac_reference` is the original straight-line
/// chain kept for differential testing. Both return identical digests.
[[nodiscard]] Digest heavy_hmac(BytesView message, BytesView seed, std::uint32_t iterations);
[[nodiscard]] Digest heavy_hmac_reference(BytesView message, BytesView seed,
                                          std::uint32_t iterations);

/// One heavy-HMAC chain for heavy_hmac_batch. The views must stay valid for
/// the duration of the call.
struct HeavyHmacJob {
  // g2g-lint: allow(view-escape) -- borrowed for the duration of one heavy_hmac_batch call
  BytesView message;
  // g2g-lint: allow(view-escape) -- borrowed for the duration of one heavy_hmac_batch call
  BytesView seed;
  std::uint32_t iterations;
};

/// Compute several independent heavy-HMAC chains, digests in job order. Each
/// chain iteration is exactly three SHA-256 compressions from cached pad
/// states, so independent chains run in lockstep through the multi-lane
/// compressor (sha256_compress_multi) in groups of kSha256MaxLanes. Every
/// digest is bit-identical to heavy_hmac / heavy_hmac_reference on the same
/// inputs; with the fast path off, each job routes through the reference
/// chain instead.
[[nodiscard]] std::vector<Digest> heavy_hmac_batch(std::span<const HeavyHmacJob> jobs);

/// Owning collector for deferring heavy-HMAC chains discovered one at a time
/// (the G2G audit loops queue every storage proof in a contact, then compute
/// them all in parallel lanes). add() copies its inputs into a batch-owned
/// arena whose chunks are recycled across run() cycles, so a warmed-up batch
/// performs no per-challenge heap allocation; run() returns digests in add()
/// order, then clears the queue and resets the arena.
class HeavyHmacBatch {
 public:
  std::size_t add(BytesView message, BytesView seed, std::uint32_t iterations);
  [[nodiscard]] std::vector<Digest> run();
  [[nodiscard]] std::size_t size() const { return jobs_.size(); }
  [[nodiscard]] bool empty() const { return jobs_.empty(); }

 private:
  Arena arena_;  ///< owns every queued message/seed until the next run()
  std::vector<HeavyHmacJob> jobs_;
};

/// Constant-time digest comparison.
[[nodiscard]] bool digest_equal(const Digest& a, const Digest& b);

}  // namespace g2g::crypto
