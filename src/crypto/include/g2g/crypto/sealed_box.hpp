// Public-key encryption to a recipient ("sealed box", ECIES-style):
// an ephemeral key pair is generated, a shared secret is agreed against the
// recipient's public key, and the payload is ChaCha20-encrypted under a key
// derived from it. Implements the paper's E_PKD(...) — the body of every
// message is sealed to the destination so relays cannot learn the sender.
#pragma once

#include "g2g/crypto/suite.hpp"

namespace g2g::crypto {

struct SealedBox {
  Bytes ephemeral_public;
  Bytes ciphertext;
};

/// Encrypt `plaintext` so only the holder of the secret key matching
/// `recipient_public` can open it.
[[nodiscard]] SealedBox seal(const Suite& suite, Rng& rng, BytesView recipient_public,
                             BytesView plaintext);

/// Decrypt; returns the plaintext. (ChaCha20 is unauthenticated here — the
/// protocol authenticates content with the inner sender signature instead.)
[[nodiscard]] Bytes seal_open(const Suite& suite, BytesView my_secret, const SealedBox& box);

}  // namespace g2g::crypto
