// Fixed-width 256-bit unsigned arithmetic for the discrete-log crypto layer.
//
// Little-endian limb order (limb[0] is least significant). All modular
// routines are value-semantic and allocation-free; performance is adequate
// for protocol simulation (the hot simulation paths use the symmetric
// signature scheme instead, see suite.hpp).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "g2g/util/bytes.hpp"
#include "g2g/util/rng.hpp"

namespace g2g::crypto {

struct U256 {
  std::array<std::uint64_t, 4> limb{};

  constexpr U256() = default;
  constexpr explicit U256(std::uint64_t v) : limb{v, 0, 0, 0} {}

  [[nodiscard]] static U256 from_hex(std::string_view hex);
  /// Interpret a 32-byte big-endian buffer (e.g. a SHA-256 digest).
  [[nodiscard]] static U256 from_bytes_be(BytesView b);
  [[nodiscard]] Bytes to_bytes_be() const;
  [[nodiscard]] std::string to_hex() const;

  [[nodiscard]] constexpr bool is_zero() const {
    return (limb[0] | limb[1] | limb[2] | limb[3]) == 0;
  }
  [[nodiscard]] bool bit(std::size_t i) const {
    return (limb[i / 64] >> (i % 64)) & 1;
  }
  /// Number of significant bits (0 for zero).
  [[nodiscard]] std::size_t bit_length() const;

  constexpr auto operator<=>(const U256& o) const {
    for (int i = 3; i >= 0; --i) {
      if (limb[i] != o.limb[i]) return limb[i] <=> o.limb[i];
    }
    return std::strong_ordering::equal;
  }
  constexpr bool operator==(const U256&) const = default;
};

struct U512 {
  std::array<std::uint64_t, 8> limb{};

  [[nodiscard]] static U512 from_u256(const U256& v) {
    U512 out;
    for (int i = 0; i < 4; ++i) out.limb[i] = v.limb[i];
    return out;
  }
  [[nodiscard]] bool bit(std::size_t i) const {
    return (limb[i / 64] >> (i % 64)) & 1;
  }
  [[nodiscard]] std::size_t bit_length() const;
};

/// a + b, wrapping; returns carry via out-param variant below.
[[nodiscard]] U256 add(const U256& a, const U256& b, bool& carry);
/// a - b, wrapping; borrow set if a < b.
[[nodiscard]] U256 sub(const U256& a, const U256& b, bool& borrow);
/// Full 256x256 -> 512-bit product.
[[nodiscard]] U512 mul_full(const U256& a, const U256& b);
/// x mod m (m must be nonzero).
[[nodiscard]] U256 mod(const U512& x, const U256& m);
[[nodiscard]] U256 mod(const U256& x, const U256& m);
/// (a + b) mod m; requires a, b < m.
[[nodiscard]] U256 add_mod(const U256& a, const U256& b, const U256& m);
/// (a - b) mod m; requires a, b < m.
[[nodiscard]] U256 sub_mod(const U256& a, const U256& b, const U256& m);
/// (a * b) mod m.
[[nodiscard]] U256 mul_mod(const U256& a, const U256& b, const U256& m);
/// base^exp mod m (square-and-multiply; m must be > 1).
[[nodiscard]] U256 pow_mod(const U256& base, const U256& exp, const U256& m);

/// Uniform value in [0, n) drawn from the deterministic Rng; requires n > 0.
[[nodiscard]] U256 random_below(Rng& rng, const U256& n);

/// Miller–Rabin probabilistic primality test (deterministic enough for
/// parameter generation; `rounds` random bases plus small-prime trial division).
[[nodiscard]] bool is_probable_prime(const U256& n, Rng& rng, int rounds = 24);

}  // namespace g2g::crypto
