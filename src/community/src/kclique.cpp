#include "g2g/community/kclique.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace g2g::community {

namespace {

/// Bron–Kerbosch with pivoting over dense adjacency.
class CliqueEnumerator {
 public:
  explicit CliqueEnumerator(const ContactGraph& graph) : g_(graph) {}

  std::vector<std::vector<NodeId>> run() {
    std::vector<NodeId> r;
    std::vector<NodeId> p;
    std::vector<NodeId> x;
    for (std::size_t i = 0; i < g_.node_count(); ++i) {
      p.emplace_back(static_cast<std::uint32_t>(i));
    }
    expand(r, p, x);
    return std::move(out_);
  }

 private:
  void expand(std::vector<NodeId>& r, std::vector<NodeId> p, std::vector<NodeId> x) {
    if (p.empty() && x.empty()) {
      if (!r.empty()) {
        auto clique = r;
        std::sort(clique.begin(), clique.end());
        out_.push_back(std::move(clique));
      }
      return;
    }
    // Pivot: vertex of P ∪ X with most neighbors in P minimizes branching.
    NodeId pivot = NodeId::invalid();
    std::size_t best = 0;
    bool first = true;
    for (const auto& set : {p, x}) {
      for (const NodeId u : set) {
        const std::size_t cnt = count_neighbors_in(u, p);
        if (first || cnt > best) {
          pivot = u;
          best = cnt;
          first = false;
        }
      }
    }
    std::vector<NodeId> candidates;
    for (const NodeId v : p) {
      if (!g_.has_edge(pivot, v)) candidates.push_back(v);
    }
    for (const NodeId v : candidates) {
      r.push_back(v);
      expand(r, intersect_neighbors(v, p), intersect_neighbors(v, x));
      r.pop_back();
      p.erase(std::find(p.begin(), p.end(), v));
      x.push_back(v);
    }
  }

  [[nodiscard]] std::size_t count_neighbors_in(NodeId u, const std::vector<NodeId>& set) const {
    std::size_t cnt = 0;
    for (const NodeId v : set) {
      if (g_.has_edge(u, v)) ++cnt;
    }
    return cnt;
  }

  [[nodiscard]] std::vector<NodeId> intersect_neighbors(NodeId u,
                                                        const std::vector<NodeId>& set) const {
    std::vector<NodeId> out;
    for (const NodeId v : set) {
      if (g_.has_edge(u, v)) out.push_back(v);
    }
    return out;
  }

  const ContactGraph& g_;
  std::vector<std::vector<NodeId>> out_;
};

/// Plain union-find.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t find(std::size_t i) {
    while (parent_[i] != i) {
      parent_[i] = parent_[parent_[i]];
      i = parent_[i];
    }
    return i;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

std::size_t sorted_overlap(const std::vector<NodeId>& a, const std::vector<NodeId>& b) {
  std::size_t i = 0;
  std::size_t j = 0;
  std::size_t cnt = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++cnt;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return cnt;
}

}  // namespace

std::vector<std::vector<NodeId>> maximal_cliques(const ContactGraph& graph) {
  return CliqueEnumerator(graph).run();
}

CommunityMap::CommunityMap(std::size_t node_count, std::vector<std::vector<NodeId>> groups)
    : node_count_(node_count), groups_(std::move(groups)) {
  membership_.assign(groups_.size(), std::vector<bool>(node_count_, false));
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    for (const NodeId n : groups_[g]) {
      if (n.value() >= node_count_) throw std::out_of_range("community node out of range");
      membership_[g][n.value()] = true;
    }
  }
}

bool CommunityMap::same_community(NodeId a, NodeId b) const {
  if (a.value() >= node_count_ || b.value() >= node_count_) return false;
  for (const auto& members : membership_) {
    if (members[a.value()] && members[b.value()]) return true;
  }
  return false;
}

std::vector<std::size_t> CommunityMap::groups_of(NodeId n) const {
  std::vector<std::size_t> out;
  if (n.value() >= node_count_) return out;
  for (std::size_t g = 0; g < membership_.size(); ++g) {
    if (membership_[g][n.value()]) out.push_back(g);
  }
  return out;
}

CommunityMap k_clique_communities(const ContactGraph& graph, std::size_t k) {
  if (k < 2) throw std::invalid_argument("k must be >= 2");
  std::vector<std::vector<NodeId>> cliques;
  for (auto& c : maximal_cliques(graph)) {
    if (c.size() >= k) cliques.push_back(std::move(c));
  }
  UnionFind uf(cliques.size());
  for (std::size_t i = 0; i < cliques.size(); ++i) {
    for (std::size_t j = i + 1; j < cliques.size(); ++j) {
      if (sorted_overlap(cliques[i], cliques[j]) >= k - 1) uf.unite(i, j);
    }
  }
  std::vector<std::vector<NodeId>> groups;
  std::vector<std::size_t> root_to_group(cliques.size(), static_cast<std::size_t>(-1));
  for (std::size_t i = 0; i < cliques.size(); ++i) {
    const std::size_t root = uf.find(i);
    if (root_to_group[root] == static_cast<std::size_t>(-1)) {
      root_to_group[root] = groups.size();
      groups.emplace_back();
    }
    auto& members = groups[root_to_group[root]];
    members.insert(members.end(), cliques[i].begin(), cliques[i].end());
  }
  for (auto& g : groups) {
    std::sort(g.begin(), g.end());
    g.erase(std::unique(g.begin(), g.end()), g.end());
  }
  return CommunityMap(graph.node_count(), std::move(groups));
}

}  // namespace g2g::community
