#include "g2g/community/graph.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "g2g/trace/stats.hpp"

namespace g2g::community {

ContactGraphConfig ContactGraphConfig::for_span(Duration span, double contacts_per_day,
                                                double minutes_per_day) {
  const double days = std::max(span.to_seconds() / 86400.0, 0.5);
  ContactGraphConfig cfg;
  cfg.min_contacts = static_cast<std::size_t>(std::max(3.0, contacts_per_day * days));
  cfg.min_total_duration = Duration::minutes(std::max(10.0, minutes_per_day * days));
  return cfg;
}

ContactGraph::ContactGraph(std::size_t node_count)
    : n_(node_count), adj_(node_count * node_count, false) {}

ContactGraph::ContactGraph(const trace::ContactTrace& trace, const ContactGraphConfig& config)
    : ContactGraph(trace.node_count()) {
  struct PairAccum {
    std::size_t contacts = 0;
    Duration total = Duration::zero();
  };
  std::map<trace::PairKey, PairAccum> accum;
  for (const auto& e : trace.events()) {
    auto& pa = accum[trace::make_pair_key(e.a, e.b)];
    ++pa.contacts;
    pa.total = pa.total + e.duration();
  }
  for (const auto& [key, pa] : accum) {
    if (pa.contacts >= config.min_contacts || pa.total >= config.min_total_duration) {
      add_edge(key.a, key.b);
    }
  }
}

void ContactGraph::add_edge(NodeId a, NodeId b) {
  if (a == b) throw std::invalid_argument("self-edge");
  if (a.value() >= n_ || b.value() >= n_) throw std::out_of_range("node id out of range");
  if (!has_edge(a, b)) {
    adj_[index(a, b)] = true;
    adj_[index(b, a)] = true;
    ++edges_;
  }
}

bool ContactGraph::has_edge(NodeId a, NodeId b) const {
  if (a.value() >= n_ || b.value() >= n_) return false;
  return adj_[index(a, b)];
}

std::vector<NodeId> ContactGraph::neighbors(NodeId a) const {
  std::vector<NodeId> out;
  for (std::size_t i = 0; i < n_; ++i) {
    if (adj_[index(a, NodeId(static_cast<std::uint32_t>(i)))]) {
      out.emplace_back(static_cast<std::uint32_t>(i));
    }
  }
  return out;
}

std::size_t ContactGraph::degree(NodeId a) const { return neighbors(a).size(); }

}  // namespace g2g::community
