// k-clique percolation community detection (Palla et al., Nature 2005).
//
// Two k-cliques are adjacent if they share k-1 nodes; a community is a
// connected component of k-clique adjacency. We implement the standard
// maximal-clique formulation: enumerate maximal cliques (Bron–Kerbosch with
// pivoting), keep those of size >= k, and union two of them whenever their
// overlap is >= k-1. Communities may overlap, exactly as in the paper's
// "selfish with outsiders" experiments.
#pragma once

#include <cstddef>
#include <vector>

#include "g2g/community/graph.hpp"
#include "g2g/util/ids.hpp"

namespace g2g::community {

/// All maximal cliques of the graph (each sorted ascending).
[[nodiscard]] std::vector<std::vector<NodeId>> maximal_cliques(const ContactGraph& graph);

/// Overlapping communities: which nodes share a social group.
class CommunityMap {
 public:
  CommunityMap() = default;
  /// Build from explicit (possibly overlapping) node groups.
  CommunityMap(std::size_t node_count, std::vector<std::vector<NodeId>> groups);

  [[nodiscard]] const std::vector<std::vector<NodeId>>& groups() const { return groups_; }
  [[nodiscard]] std::size_t group_count() const { return groups_.size(); }
  /// True iff a and b belong to at least one common community.
  [[nodiscard]] bool same_community(NodeId a, NodeId b) const;
  /// Communities containing n (empty for isolated nodes).
  [[nodiscard]] std::vector<std::size_t> groups_of(NodeId n) const;

 private:
  std::size_t node_count_ = 0;
  std::vector<std::vector<NodeId>> groups_;
  std::vector<std::vector<bool>> membership_;  // [group][node]
};

/// Run k-clique percolation on the graph. Requires k >= 2.
[[nodiscard]] CommunityMap k_clique_communities(const ContactGraph& graph, std::size_t k = 3);

}  // namespace g2g::community
