// Weighted contact graph derived from a trace.
//
// Nodes are devices; an edge connects a pair whose accumulated contact
// history over the trace exceeds a familiarity threshold. This graph is the
// input to k-clique percolation (kclique.hpp), mirroring the paper's use of
// the Palla et al. algorithm on each data trace.
#pragma once

#include <cstdint>
#include <vector>

#include "g2g/trace/contact.hpp"
#include "g2g/util/time.hpp"

namespace g2g::community {

struct ContactGraphConfig {
  /// A pair becomes an edge if it met at least this many times...
  std::size_t min_contacts = 3;
  /// ...or accumulated at least this much total contact time.
  Duration min_total_duration = Duration::minutes(10);

  /// Thresholds proportional to the trace length, so an 11-day trace demands
  /// the same *familiarity rate* as a 3-day one: `contacts_per_day` meetings
  /// or `minutes_per_day` minutes of co-location per day of trace.
  [[nodiscard]] static ContactGraphConfig for_span(Duration span,
                                                   double contacts_per_day = 20.0,
                                                   double minutes_per_day = 80.0);
};

/// Undirected simple graph with dense adjacency over node ids [0, n).
class ContactGraph {
 public:
  explicit ContactGraph(std::size_t node_count);
  /// Build from a finalized trace by thresholding pair contact history.
  ContactGraph(const trace::ContactTrace& trace, const ContactGraphConfig& config);

  void add_edge(NodeId a, NodeId b);
  [[nodiscard]] bool has_edge(NodeId a, NodeId b) const;
  [[nodiscard]] std::size_t node_count() const { return n_; }
  [[nodiscard]] std::size_t edge_count() const { return edges_; }
  [[nodiscard]] std::vector<NodeId> neighbors(NodeId a) const;
  [[nodiscard]] std::size_t degree(NodeId a) const;

 private:
  std::size_t n_;
  std::size_t edges_ = 0;
  std::vector<bool> adj_;  // n*n dense matrix

  [[nodiscard]] std::size_t index(NodeId a, NodeId b) const {
    return static_cast<std::size_t>(a.value()) * n_ + b.value();
  }
};

}  // namespace g2g::community
