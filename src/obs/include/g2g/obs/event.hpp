// Structured simulation events: the typed vocabulary of the tracer.
//
// One Event is one protocol-level occurrence (a contact firing, a handshake
// step, a test outcome, a PoM broadcast, ...) stamped with sim-time and the
// node ids involved. Events are plain value types — cheap to copy into the
// tracer's ring buffer and cheap to drop when tracing is disabled.
//
// The JSONL schema and the full taxonomy are documented in
// docs/OBSERVABILITY.md; event kind names here and there must stay in sync.
#pragma once

#include <cstdint>

#include "g2g/util/ids.hpp"
#include "g2g/util/time.hpp"

namespace g2g::obs {

enum class EventKind : std::uint8_t {
  // Radio / session layer.
  ContactUp = 0,    ///< a,b in range; value = contact duration (us, -1 unbounded)
  ContactDown,      ///< session closed; value = bytes the contact carried
  SessionOpen,      ///< mutual authentication succeeded
  SessionRefused,   ///< a or b blacklists the other (the eviction in action)

  // G2G relay handshake, Fig. 1 steps 1-5 (Delegation reuses 3-5).
  HsRelayRqst,      ///< step 1, RELAY_RQST: a=giver, b=taker, ref=msg
  HsRelayOk,        ///< step 2, RELAY_OK: a=taker; value 1=accept, 0=decline
  HsRelayData,      ///< step 3, RELAY E_k(m): value = encrypted bytes
  HsPorSigned,      ///< step 4, PoR signed: a=taker, b=giver
  HsKeyReveal,      ///< step 5, KEY: a=giver; the taker now learns if it is D

  // Delegation quality negotiation (Fig. 6 steps 8-9).
  FqRqst,           ///< FQ_RQST: a=giver, b=candidate, ref=msg
  FqResp,           ///< FQ_RESP: a=declarer; value = quality scaled by 1e6

  // Proofs of relay.
  PorIssued,        ///< a=taker signed a PoR for b=giver
  PorVerified,      ///< a=verifier checked b's PoR; value 1=ok, 0=bad

  // Test phases (Sections IV-B, VI-VII).
  StorageChallenge, ///< a computed the heavy HMAC; value = iterations
  TestBySender,     ///< a=source tested b=relay; value: 0=fail, 1=PoRs ok,
                    ///< 2=storage proof ok, 3=inconclusive
  TestByDestination,///< a=destination checked b's declaration; value: 0=lie,
                    ///< 1=consistent, 2=unverifiable frame
  ChainCheck,       ///< a=source ran the f_m chain over b's PoRs; value 1=ok, 0=cheat

  // Accusations and eviction.
  PomIssued,        ///< a=accuser issued a PoM against b=culprit; value = PoM kind
  PomGossip,        ///< a pushed a PoM (about ref culprit) to b at session start
  PomLearned,       ///< a verified a gossiped PoM against b; value 1=accepted
  Eviction,         ///< b=culprit blacklisted network-wide by a=accuser

  // Buffers.
  BufferAdd,        ///< a's buffer grew; value = +bytes
  BufferEvict,      ///< a's buffer shrank (payload dropped/evicted); value = -bytes

  // Message lifecycle (mirrors metrics::Collector).
  MessageGenerated, ///< a=src sealed ref toward b=dst
  MessageRelayed,   ///< one replica moved a -> b; value = hop delay (us)
  MessageDelivered, ///< b=dst opened ref; value = end-to-end delay (us)
  Detection,        ///< a=detector caught b=culprit; value = DetectionMethod
};

inline constexpr std::size_t kEventKindCount =
    static_cast<std::size_t>(EventKind::Detection) + 1;

/// Stable machine-readable name ("hs_relay_rqst", ...) used by the JSONL sink.
[[nodiscard]] const char* to_string(EventKind kind);

struct Event {
  TimePoint at;                       ///< sim-time stamp
  EventKind kind = EventKind::ContactUp;
  NodeId a;                           ///< primary actor
  NodeId b;                           ///< counterparty (may be invalid())
  std::uint64_t ref = 0;              ///< message reference (id, or folded hash)
  std::int64_t value = 0;             ///< kind-specific payload (see above)
};

}  // namespace g2g::obs
