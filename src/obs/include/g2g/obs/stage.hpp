// Wall-clock profiling of experiment pipeline stages.
//
// A StageProfile is an ordered list of (name, seconds) entries; a StageTimer
// measures one scope with std::chrono::steady_clock and records itself on
// destruction. Stage times are the only non-deterministic quantities the obs
// layer produces — they measure the host machine, not the simulation.
#pragma once

#include <chrono>
#include <string>
#include <vector>

namespace g2g::obs {

class StageProfile {
 public:
  struct Stage {
    std::string name;
    double seconds = 0.0;
  };

  void add(std::string name, double seconds) {
    stages_.push_back({std::move(name), seconds});
  }

  [[nodiscard]] const std::vector<Stage>& stages() const { return stages_; }
  [[nodiscard]] bool empty() const { return stages_.empty(); }
  /// Seconds recorded under `name` (summed if recorded more than once).
  [[nodiscard]] double seconds(const std::string& name) const;
  [[nodiscard]] double total() const;

 private:
  std::vector<Stage> stages_;
};

/// RAII scope timer; records into the profile when destroyed (or on stop()).
class StageTimer {
 public:
  StageTimer(StageProfile& profile, std::string name)
      : profile_(&profile),
        name_(std::move(name)),
        start_(std::chrono::steady_clock::now()) {}

  /// Null timer: profiling optional without branching at every call site.
  StageTimer(StageProfile* profile, std::string name)
      : profile_(profile),
        name_(std::move(name)),
        start_(std::chrono::steady_clock::now()) {}

  ~StageTimer() { stop(); }

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

  /// Record now instead of at scope exit; idempotent.
  void stop() {
    if (profile_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    profile_->add(std::move(name_),
                  std::chrono::duration<double>(elapsed).count());
    profile_ = nullptr;
  }

 private:
  StageProfile* profile_;
  std::string name_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace g2g::obs
