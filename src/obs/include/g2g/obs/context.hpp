// The observability bundle one simulation run carries: a Tracer, a Registry,
// and pre-resolved handles for the well-known protocol counters so the hot
// path never does a name lookup.
//
// proto::NetworkBase owns (or is handed) exactly one ObsContext per run;
// nodes reach it through Env::obs(). core::run_experiment snapshots the
// registry into the ExperimentResult after the run.
#pragma once

#include <array>
#include <cstdint>

#include "g2g/obs/registry.hpp"
#include "g2g/obs/tracer.hpp"

namespace g2g::obs {

/// Wire-message taxonomy for per-kind byte/message counters. Mirrors the
/// control messages of proto/wire.hpp plus the bulk transfers.
enum class WireKind : std::uint8_t {
  Certificate = 0,  ///< session-start certificate exchange
  SummaryVector,    ///< epidemic per-contact hash summary
  Payload,          ///< vanilla-protocol message body transfer
  RelayRqst,        ///< G2G step 1
  RelayOk,          ///< G2G step 2 (accept or decline)
  RelayData,        ///< G2G step 3, E_k(m) (+ embedded declarations)
  KeyReveal,        ///< G2G step 5
  PorRqst,          ///< test-phase challenge
  StoredResp,       ///< storage-proof response header
  FqRqst,           ///< Delegation quality request
  QualityDecl,      ///< signed quality declaration (FQ_RESP)
  Por,              ///< proof-of-relay transfer
  Pom,              ///< proof-of-misbehaviour gossip
  Other,
};

inline constexpr std::size_t kWireKindCount =
    static_cast<std::size_t>(WireKind::Other) + 1;

/// Stable snake_case name ("relay_rqst", ...) used in counter names.
[[nodiscard]] const char* to_string(WireKind kind);

/// Handles into a Registry for every counter the protocol layers drive.
/// Counter names are "area.metric" (see docs/OBSERVABILITY.md for the list).
struct ProtocolCounters {
  explicit ProtocolCounters(Registry& registry);

  // Radio / session layer.
  Counter* contacts;
  Counter* sessions_opened;
  Counter* sessions_refused;

  // Relay handshakes.
  Counter* handshakes_started;
  Counter* handshakes_declined;
  Counter* handshakes_completed;
  Counter* handshakes_aborted;  ///< giver walked away mid-handshake (bad PoR/decl)
  Counter* pors_issued;
  Counter* pors_verified;

  // Test phases.
  Counter* tests_by_sender;
  Counter* tests_passed;
  Counter* tests_failed;
  Counter* storage_challenges;  ///< heavy HMACs computed (prover + verifier)
  Counter* chain_cheats;
  Counter* quality_lies;

  // Accusations.
  Counter* poms_issued;
  Counter* poms_gossiped;
  Counter* poms_learned;
  Counter* evictions;

  // Relay-core mechanism counters ("g2g.*"). They describe how the run was
  // computed (frame codec traffic, batched PoM re-verification), not what it
  // computed, so core::to_json(ExperimentResult) excludes them alongside the
  // fastpath.* cache counters.
  Counter* pom_gossip_dup;      ///< gossiped PoMs deduped before re-verification
  Counter* pom_batch_verified;  ///< unique PoMs re-verified through verify_batch
  Counter* frames_encoded;      ///< handshake/audit frames encoded
  Counter* frames_decoded;      ///< handshake/audit frames decoded

  // Message lifecycle.
  Counter* generated;
  Counter* relays;
  Counter* deliveries;
  Counter* detections;

  // Buffers.
  Counter* buffer_adds;
  Counter* buffer_drops;

  // Per-kind wire traffic ("wire.<kind>.bytes" / "wire.<kind>.msgs").
  std::array<Counter*, kWireKindCount> wire_bytes{};
  std::array<Counter*, kWireKindCount> wire_msgs{};

  // Distributions.
  Histogram* hop_delay_s;       ///< delay of each relay hop
  Histogram* delivery_delay_s;  ///< end-to-end delay of delivered messages
  Histogram* contact_duration_s;

  void count_wire(WireKind kind, std::uint64_t bytes) {
    const auto i = static_cast<std::size_t>(kind);
    wire_msgs[i]->add();
    wire_bytes[i]->add(bytes);
  }
};

/// One run's worth of observability state. Not copyable (the counter handles
/// point into the registry); snapshot by copying `registry`.
struct ObsContext {
  ObsContext() = default;
  ObsContext(const ObsContext&) = delete;
  ObsContext& operator=(const ObsContext&) = delete;

  Tracer tracer;
  Registry registry;
  ProtocolCounters counters{registry};
};

}  // namespace g2g::obs
