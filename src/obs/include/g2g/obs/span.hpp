// Causal spans: the lifecycle layer on top of the flat event stream.
//
// A span is an interval in sim-time with an identity and a parent. The
// protocol layers open four kinds of spans:
//
//   msg            one per generated message, keyed by the message ref; the
//                  root of that message's causal tree. Closed in bulk at the
//                  end of the run (value 1 = delivered, 0 = not), so child
//                  spans always nest inside a live parent.
//   relay_session  one 5-step G2G handshake attempt (steps 1-5 or the
//                  decline), child of the message span; value 1 = the relay
//                  completed, 0 = declined/aborted.
//   audit_round    one test-by-sender challenge, child of the message span;
//                  value mirrors the TestBySender event (0 fail, 1 PoRs ok,
//                  2 storage proof ok, 3 inconclusive).
//   pom_gossip     one session's accusation exchange (a root span); value =
//                  number of PoMs the gossip carried.
//
// Spans travel through the same Tracer/EventSink pipeline as events
// (JsonlSink writes one "open" and one "close" line per span) and obey the
// same cardinal rule: tracing is read-only, a traced run is bit-identical to
// an untraced one. Span ids are allocated deterministically (1, 2, 3, ... in
// emission order), so two traced runs of the same config produce
// byte-identical JSONL. Timestamps are sim-time; optional steady_clock
// deltas (Tracer::enable_wall_profiling) attach wall_ns to close records for
// profiling runs only — they are the one non-deterministic field, off by
// default.
//
// The registered span-name set lives in three deliberately-synced places:
// this comment, docs/OBSERVABILITY.md ("Spans & causal tracing"), and
// tools/lint's `span-name-registry` rule, which requires every
// open_span()/StageTimer name literal in src/ to come from the set:
//   spans:  msg, relay_session, audit_round, pom_gossip
//   stages: trace_gen, communities, warm_up, simulation, pom_batch_verify,
//           extraction
#pragma once

#include <cstdint>

#include "g2g/util/ids.hpp"
#include "g2g/util/time.hpp"

namespace g2g::obs {

struct SpanRecord {
  TimePoint at;                ///< sim-time stamp of the open or close
  std::uint64_t id = 0;        ///< deterministic, 1-based, emission order
  std::uint64_t parent = 0;    ///< parent span id; 0 = root
  const char* name = nullptr;  ///< registered span name; nullptr on close
  bool close = false;
  NodeId a;                    ///< primary actor (giver / source / gossiper)
  NodeId b;                    ///< counterparty (may be invalid())
  std::uint64_t ref = 0;       ///< message reference, 0 when not per-message
  std::int64_t value = 0;      ///< close outcome (kind-specific, see above)
  std::int64_t wall_ns = -1;   ///< steady_clock delta; -1 unless profiling
};

}  // namespace g2g::obs
