// The structured event tracer: a ring-buffered, optionally-sinked stream of
// typed simulation events.
//
// Disabled (the default) the whole tracer is one branch per emit() — protocol
// code can instrument unconditionally. Enabling either a ring buffer (for
// in-process inspection and tests) or a sink (e.g. JsonlSink for files)
// turns recording on. Tracing is strictly read-only with respect to the
// simulation: it never touches the RNG or protocol state, so a traced run
// produces bit-identical results to an untraced one (tests/obs_test.cpp
// proves this).
//
// Thread model: one Tracer belongs to one single-threaded simulation run
// (core::run_parallel gives every run its own ObsContext).
#pragma once

#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "g2g/obs/event.hpp"
#include "g2g/obs/span.hpp"

namespace g2g::obs {

/// Receiver of the event stream; attach with Tracer::add_sink.
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void on_event(const Event& e) = 0;
  /// Span open/close records. Default ignore: event-only sinks keep working
  /// unchanged when the protocol layers emit spans.
  virtual void on_span(const SpanRecord& s) { (void)s; }
};

class Tracer {
 public:
  /// Attach a non-owning sink; enables tracing. The sink must outlive the run.
  void add_sink(EventSink* sink);
  /// Keep the most recent `capacity` events in memory; enables tracing.
  void enable_ring(std::size_t capacity = 4096);

  [[nodiscard]] bool enabled() const { return enabled_; }
  void emit(const Event& e) {
    if (enabled_) record(e);
  }

  /// Ring contents, oldest first (emission order; events at equal sim-time
  /// keep the order they were emitted in).
  [[nodiscard]] std::vector<Event> ring() const;
  /// Total events recorded since construction (including ones the ring dropped).
  [[nodiscard]] std::uint64_t emitted() const { return emitted_; }

  // Spans ---------------------------------------------------------------------
  // See span.hpp for the model. All span state lives behind `enabled_`: a
  // disabled tracer allocates nothing and returns id 0, and close_span(0) is
  // a no-op, so call sites stay branch-free.

  /// Open a child span; returns its id (0 when tracing is disabled).
  std::uint64_t open_span(TimePoint at, const char* name, std::uint64_t parent,
                          NodeId a, NodeId b, std::uint64_t ref = 0);
  /// Close a span opened by open_span; `value` is the outcome.
  void close_span(TimePoint at, std::uint64_t id, std::int64_t value = 0);

  /// Message lifecycle spans, keyed by the message ref: opened at generation,
  /// marked at first delivery, closed in bulk (ref order) at end of run so
  /// child spans always nest inside a live parent.
  void open_message_span(TimePoint at, std::uint64_t ref, NodeId src, NodeId dst);
  /// Span id for a message ref; 0 if unknown (children then become roots).
  [[nodiscard]] std::uint64_t message_span(std::uint64_t ref) const;
  void mark_message_delivered(std::uint64_t ref);
  /// Close every still-open message span: value 1 = delivered, 0 = not.
  void close_message_spans(TimePoint at);

  /// Attach steady_clock deltas (SpanRecord::wall_ns) to close records. Off
  /// by default — wall deltas are the one non-deterministic span field, so
  /// enabling this forfeits byte-identical JSONL (profiling runs only).
  void enable_wall_profiling() { wall_profiling_ = true; }

  /// Total spans opened since construction.
  [[nodiscard]] std::uint64_t spans_opened() const { return next_span_id_ - 1; }

 private:
  void record(const Event& e);
  void record_span(const SpanRecord& s);

  struct MsgSpan {
    std::uint64_t id = 0;
    bool delivered = false;
  };

  bool enabled_ = false;
  bool wall_profiling_ = false;
  std::uint64_t emitted_ = 0;
  std::size_t ring_capacity_ = 0;
  std::size_t ring_next_ = 0;   // next write slot once the ring is full
  std::vector<Event> ring_;
  std::vector<EventSink*> sinks_;
  std::uint64_t next_span_id_ = 1;
  std::map<std::uint64_t, MsgSpan> msg_spans_;  // ref -> open message span
  /// Open wall-clock stamps, kept only while wall profiling is on.
  std::map<std::uint64_t, std::chrono::steady_clock::time_point> open_wall_;
};

/// Streams every event as one JSON object per line:
///   {"t_us":1234,"ev":"hs_relay_rqst","a":3,"b":7,"ref":42,"v":0}
/// `b` is -1 when the event has no counterparty. Output is deterministic
/// (integer microsecond timestamps, fixed key order).
class JsonlSink final : public EventSink {
 public:
  /// Write to an already-open stream; the caller keeps ownership.
  explicit JsonlSink(std::FILE* out) : out_(out), owned_(false) {}
  ~JsonlSink() override;

  JsonlSink(const JsonlSink&) = delete;
  JsonlSink& operator=(const JsonlSink&) = delete;

  /// Open `path` for writing; returns nullptr (with errno set) on failure.
  [[nodiscard]] static std::unique_ptr<JsonlSink> open(const std::string& path);

  void on_event(const Event& e) override;
  /// Span lines share the stream, distinguished by the "span" key:
  ///   {"t_us":N,"span":"open","name":"msg","id":1,"parent":0,"a":3,"b":7,"ref":42}
  ///   {"t_us":N,"span":"close","id":1,"v":1}          (+ "wall_ns" if profiling)
  void on_span(const SpanRecord& s) override;
  [[nodiscard]] std::uint64_t lines_written() const { return lines_; }

 private:
  JsonlSink(std::FILE* out, bool owned) : out_(out), owned_(owned) {}

  std::FILE* out_;
  bool owned_;
  std::uint64_t lines_ = 0;
};

/// Counts events per kind without storing them; handy for tests and for the
/// cheapest possible "is anything happening" probe.
class CountingSink final : public EventSink {
 public:
  void on_event(const Event& e) override;
  [[nodiscard]] std::uint64_t count(EventKind kind) const;
  [[nodiscard]] std::uint64_t total() const { return total_; }

 private:
  std::uint64_t per_kind_[kEventKindCount] = {};
  std::uint64_t total_ = 0;
};

}  // namespace g2g::obs
