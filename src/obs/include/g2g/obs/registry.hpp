// Named protocol counters and fixed-bucket histograms.
//
// A Counter is a monotonic uint64; a Histogram counts observations into
// fixed upper-bound buckets (plus an overflow bucket). Both are plain value
// types: incrementing is one add with no indirection — the Registry hands
// out stable pointers once at setup (std::map nodes never move), so the hot
// path never pays a name lookup. The Registry is copyable, which is how an
// end-of-run snapshot lands in core::ExperimentResult.
//
// Like the tracer, a Registry belongs to one single-threaded simulation run.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace g2g::obs {

class Counter {
 public:
  void add(std::uint64_t delta = 1) { value_ += delta; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Histogram {
 public:
  Histogram() = default;
  /// `edges` are inclusive upper bounds, strictly ascending; bucket i counts
  /// observations v with edges[i-1] < v <= edges[i]. One extra overflow
  /// bucket counts v > edges.back().
  explicit Histogram(std::vector<double> edges);

  void observe(double v);

  [[nodiscard]] const std::vector<double>& edges() const { return edges_; }
  /// edges().size() + 1 entries; the last one is the overflow bucket.
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const { return buckets_; }
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

 private:
  std::vector<double> edges_;
  std::vector<std::uint64_t> buckets_{0};  // overflow-only until configured
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

class Registry {
 public:
  /// Get or create; the returned reference stays valid for the registry's
  /// lifetime (and is invalidated by copying only on the copy's side).
  [[nodiscard]] Counter& counter(const std::string& name);
  /// Get or create; `edges` is used only on first creation.
  [[nodiscard]] Histogram& histogram(const std::string& name,
                                     std::vector<double> edges);

  /// Counter value by name, 0 if the counter was never created.
  [[nodiscard]] std::uint64_t value(const std::string& name) const;
  [[nodiscard]] const Histogram* find_histogram(const std::string& name) const;

  /// Name-sorted iteration for deterministic reporting.
  [[nodiscard]] const std::map<std::string, Counter>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace g2g::obs
