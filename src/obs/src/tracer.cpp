#include "g2g/obs/tracer.hpp"

namespace g2g::obs {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::ContactUp: return "contact_up";
    case EventKind::ContactDown: return "contact_down";
    case EventKind::SessionOpen: return "session_open";
    case EventKind::SessionRefused: return "session_refused";
    case EventKind::HsRelayRqst: return "hs_relay_rqst";
    case EventKind::HsRelayOk: return "hs_relay_ok";
    case EventKind::HsRelayData: return "hs_relay_data";
    case EventKind::HsPorSigned: return "hs_por_signed";
    case EventKind::HsKeyReveal: return "hs_key_reveal";
    case EventKind::FqRqst: return "fq_rqst";
    case EventKind::FqResp: return "fq_resp";
    case EventKind::PorIssued: return "por_issued";
    case EventKind::PorVerified: return "por_verified";
    case EventKind::StorageChallenge: return "storage_challenge";
    case EventKind::TestBySender: return "test_by_sender";
    case EventKind::TestByDestination: return "test_by_destination";
    case EventKind::ChainCheck: return "chain_check";
    case EventKind::PomIssued: return "pom_issued";
    case EventKind::PomGossip: return "pom_gossip";
    case EventKind::PomLearned: return "pom_learned";
    case EventKind::Eviction: return "eviction";
    case EventKind::BufferAdd: return "buffer_add";
    case EventKind::BufferEvict: return "buffer_evict";
    case EventKind::MessageGenerated: return "message_generated";
    case EventKind::MessageRelayed: return "message_relayed";
    case EventKind::MessageDelivered: return "message_delivered";
    case EventKind::Detection: return "detection";
  }
  return "unknown";
}

void Tracer::add_sink(EventSink* sink) {
  if (sink == nullptr) return;
  sinks_.push_back(sink);
  enabled_ = true;
}

void Tracer::enable_ring(std::size_t capacity) {
  ring_capacity_ = capacity;
  ring_.clear();
  ring_.reserve(capacity);
  ring_next_ = 0;
  if (capacity > 0) enabled_ = true;
}

void Tracer::record(const Event& e) {
  ++emitted_;
  if (ring_capacity_ > 0) {
    if (ring_.size() < ring_capacity_) {
      ring_.push_back(e);
    } else {
      ring_[ring_next_] = e;
      ring_next_ = (ring_next_ + 1) % ring_capacity_;
    }
  }
  for (EventSink* sink : sinks_) sink->on_event(e);
}

void Tracer::record_span(const SpanRecord& s) {
  for (EventSink* sink : sinks_) sink->on_span(s);
}

std::uint64_t Tracer::open_span(TimePoint at, const char* name,
                                std::uint64_t parent, NodeId a, NodeId b,
                                std::uint64_t ref) {
  if (!enabled_) return 0;
  SpanRecord s;
  s.at = at;
  s.id = next_span_id_++;
  s.parent = parent;
  s.name = name;
  s.a = a;
  s.b = b;
  s.ref = ref;
  if (wall_profiling_) open_wall_[s.id] = std::chrono::steady_clock::now();
  record_span(s);
  return s.id;
}

void Tracer::close_span(TimePoint at, std::uint64_t id, std::int64_t value) {
  if (!enabled_ || id == 0) return;
  SpanRecord s;
  s.at = at;
  s.id = id;
  s.close = true;
  s.value = value;
  if (wall_profiling_) {
    auto it = open_wall_.find(id);
    if (it != open_wall_.end()) {
      s.wall_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - it->second)
                      .count();
      open_wall_.erase(it);
    }
  }
  record_span(s);
}

void Tracer::open_message_span(TimePoint at, std::uint64_t ref, NodeId src,
                               NodeId dst) {
  if (!enabled_) return;
  MsgSpan& m = msg_spans_[ref];
  if (m.id != 0) return;  // regenerated ref: keep the original span
  m.id = open_span(at, "msg", /*parent=*/0, src, dst, ref);
}

std::uint64_t Tracer::message_span(std::uint64_t ref) const {
  auto it = msg_spans_.find(ref);
  return it == msg_spans_.end() ? 0 : it->second.id;
}

void Tracer::mark_message_delivered(std::uint64_t ref) {
  if (!enabled_) return;
  auto it = msg_spans_.find(ref);
  if (it != msg_spans_.end()) it->second.delivered = true;
}

void Tracer::close_message_spans(TimePoint at) {
  // std::map iterates in ref order — deterministic close sequence.
  for (const auto& [ref, m] : msg_spans_) {
    (void)ref;
    close_span(at, m.id, m.delivered ? 1 : 0);
  }
  msg_spans_.clear();
}

std::vector<Event> Tracer::ring() const {
  std::vector<Event> out;
  out.reserve(ring_.size());
  // Oldest part first: the slots from the wrap point to the end...
  for (std::size_t i = ring_next_; i < ring_.size(); ++i) out.push_back(ring_[i]);
  // ...then the most recently overwritten prefix.
  for (std::size_t i = 0; i < ring_next_; ++i) out.push_back(ring_[i]);
  return out;
}

JsonlSink::~JsonlSink() {
  if (out_ != nullptr) {
    std::fflush(out_);
    if (owned_) std::fclose(out_);
  }
}

std::unique_ptr<JsonlSink> JsonlSink::open(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return nullptr;
  return std::unique_ptr<JsonlSink>(new JsonlSink(f, /*owned=*/true));
}

void JsonlSink::on_event(const Event& e) {
  if (out_ == nullptr) return;
  const long long b =
      e.b.valid() ? static_cast<long long>(e.b.value()) : -1LL;
  std::fprintf(out_,
               "{\"t_us\":%lld,\"ev\":\"%s\",\"a\":%lld,\"b\":%lld,"
               "\"ref\":%llu,\"v\":%lld}\n",
               static_cast<long long>(e.at.micros()), to_string(e.kind),
               e.a.valid() ? static_cast<long long>(e.a.value()) : -1LL, b,
               static_cast<unsigned long long>(e.ref),
               static_cast<long long>(e.value));
  ++lines_;
}

void JsonlSink::on_span(const SpanRecord& s) {
  if (out_ == nullptr) return;
  if (s.close) {
    if (s.wall_ns >= 0) {
      std::fprintf(out_,
                   "{\"t_us\":%lld,\"span\":\"close\",\"id\":%llu,\"v\":%lld,"
                   "\"wall_ns\":%lld}\n",
                   static_cast<long long>(s.at.micros()),
                   static_cast<unsigned long long>(s.id),
                   static_cast<long long>(s.value),
                   static_cast<long long>(s.wall_ns));
    } else {
      std::fprintf(out_,
                   "{\"t_us\":%lld,\"span\":\"close\",\"id\":%llu,\"v\":%lld}\n",
                   static_cast<long long>(s.at.micros()),
                   static_cast<unsigned long long>(s.id),
                   static_cast<long long>(s.value));
    }
  } else {
    std::fprintf(out_,
                 "{\"t_us\":%lld,\"span\":\"open\",\"name\":\"%s\","
                 "\"id\":%llu,\"parent\":%llu,\"a\":%lld,\"b\":%lld,"
                 "\"ref\":%llu}\n",
                 static_cast<long long>(s.at.micros()),
                 s.name != nullptr ? s.name : "unknown",
                 static_cast<unsigned long long>(s.id),
                 static_cast<unsigned long long>(s.parent),
                 s.a.valid() ? static_cast<long long>(s.a.value()) : -1LL,
                 s.b.valid() ? static_cast<long long>(s.b.value()) : -1LL,
                 static_cast<unsigned long long>(s.ref));
  }
  ++lines_;
}

void CountingSink::on_event(const Event& e) {
  ++per_kind_[static_cast<std::size_t>(e.kind)];
  ++total_;
}

std::uint64_t CountingSink::count(EventKind kind) const {
  return per_kind_[static_cast<std::size_t>(kind)];
}

}  // namespace g2g::obs
