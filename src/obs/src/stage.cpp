#include "g2g/obs/stage.hpp"

namespace g2g::obs {

double StageProfile::seconds(const std::string& name) const {
  double total = 0.0;
  for (const auto& s : stages_) {
    if (s.name == name) total += s.seconds;
  }
  return total;
}

double StageProfile::total() const {
  double total = 0.0;
  for (const auto& s : stages_) total += s.seconds;
  return total;
}

}  // namespace g2g::obs
