#include "g2g/obs/registry.hpp"

#include <algorithm>
#include <stdexcept>

namespace g2g::obs {

Histogram::Histogram(std::vector<double> edges) : edges_(std::move(edges)) {
  if (!std::is_sorted(edges_.begin(), edges_.end()) ||
      std::adjacent_find(edges_.begin(), edges_.end()) != edges_.end()) {
    throw std::invalid_argument("histogram edges must be strictly ascending");
  }
  buckets_.assign(edges_.size() + 1, 0);
}

void Histogram::observe(double v) {
  // First bucket whose inclusive upper bound admits v; past-the-end =
  // overflow. upper_bound on (v - 0) with <= semantics == lower_bound.
  const auto it = std::lower_bound(edges_.begin(), edges_.end(), v);
  ++buckets_[static_cast<std::size_t>(it - edges_.begin())];
  ++count_;
  sum_ += v;
}

Counter& Registry::counter(const std::string& name) { return counters_[name]; }

Histogram& Registry::histogram(const std::string& name, std::vector<double> edges) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(name, Histogram(std::move(edges))).first->second;
}

std::uint64_t Registry::value(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

const Histogram* Registry::find_histogram(const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

}  // namespace g2g::obs
