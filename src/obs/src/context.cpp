#include "g2g/obs/context.hpp"

#include <string>

namespace g2g::obs {

const char* to_string(WireKind kind) {
  switch (kind) {
    case WireKind::Certificate: return "certificate";
    case WireKind::SummaryVector: return "summary_vector";
    case WireKind::Payload: return "payload";
    case WireKind::RelayRqst: return "relay_rqst";
    case WireKind::RelayOk: return "relay_ok";
    case WireKind::RelayData: return "relay_data";
    case WireKind::KeyReveal: return "key_reveal";
    case WireKind::PorRqst: return "por_rqst";
    case WireKind::StoredResp: return "stored_resp";
    case WireKind::FqRqst: return "fq_rqst";
    case WireKind::QualityDecl: return "quality_decl";
    case WireKind::Por: return "por";
    case WireKind::Pom: return "pom";
    case WireKind::Other: return "other";
  }
  return "unknown";
}

ProtocolCounters::ProtocolCounters(Registry& r)
    : contacts(&r.counter("session.contacts")),
      sessions_opened(&r.counter("session.opened")),
      sessions_refused(&r.counter("session.refused")),
      handshakes_started(&r.counter("hs.started")),
      handshakes_declined(&r.counter("hs.declined")),
      handshakes_completed(&r.counter("hs.completed")),
      handshakes_aborted(&r.counter("hs.aborted")),
      pors_issued(&r.counter("hs.por_issued")),
      pors_verified(&r.counter("hs.por_verified")),
      tests_by_sender(&r.counter("detect.tests_by_sender")),
      tests_passed(&r.counter("detect.tests_passed")),
      tests_failed(&r.counter("detect.tests_failed")),
      storage_challenges(&r.counter("detect.storage_challenges")),
      chain_cheats(&r.counter("detect.chain_cheats")),
      quality_lies(&r.counter("detect.quality_lies")),
      poms_issued(&r.counter("pom.issued")),
      poms_gossiped(&r.counter("pom.gossiped")),
      poms_learned(&r.counter("pom.learned")),
      evictions(&r.counter("pom.evictions")),
      pom_gossip_dup(&r.counter("g2g.pom.gossip_dup")),
      pom_batch_verified(&r.counter("g2g.pom.batch_verified")),
      frames_encoded(&r.counter("g2g.frame.encoded")),
      frames_decoded(&r.counter("g2g.frame.decoded")),
      generated(&r.counter("msg.generated")),
      relays(&r.counter("msg.relayed")),
      deliveries(&r.counter("msg.delivered")),
      detections(&r.counter("detect.detections")),
      buffer_adds(&r.counter("buffer.adds")),
      buffer_drops(&r.counter("buffer.drops")),
      hop_delay_s(&r.histogram(
          "msg.hop_delay_s",
          {1.0, 10.0, 60.0, 300.0, 900.0, 1800.0, 3600.0, 7200.0})),
      delivery_delay_s(&r.histogram(
          "msg.delivery_delay_s",
          {1.0, 10.0, 60.0, 300.0, 900.0, 1800.0, 3600.0, 7200.0, 10800.0})),
      contact_duration_s(&r.histogram(
          "session.contact_duration_s",
          {1.0, 10.0, 30.0, 60.0, 120.0, 300.0, 600.0, 1800.0})) {
  for (std::size_t i = 0; i < kWireKindCount; ++i) {
    const std::string base =
        std::string("wire.") + to_string(static_cast<WireKind>(i));
    wire_bytes[i] = &r.counter(base + ".bytes");
    wire_msgs[i] = &r.counter(base + ".msgs");
  }
}

}  // namespace g2g::obs
