// Simulation metrics: the quantities every table and figure in the paper is
// built from — delivery, delay, replica cost, control overhead, memory and
// energy accounting, and misbehaviour-detection events.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "g2g/obs/context.hpp"
#include "g2g/util/ids.hpp"
#include "g2g/util/stats.hpp"
#include "g2g/util/time.hpp"

namespace g2g::metrics {

/// Per-node resource accounting. Drives the payoff function used by the
/// Nash-equilibrium property tests.
struct NodeCosts {
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t signatures = 0;
  std::uint64_t verifications = 0;
  std::uint64_t heavy_hmacs = 0;        // storage-proof challenges computed
  std::uint64_t sessions = 0;           // authenticated contacts
  double memory_byte_seconds = 0.0;     // integral of buffer occupancy

  /// Scalar energy in abstract joule-like units; the knobs encode the paper's
  /// requirement that a heavy HMAC outweighs what storing-without-relaying saves.
  [[nodiscard]] double energy(double per_byte = 0.001, double per_signature = 1.0,
                              double per_heavy_hmac = 2000.0) const {
    return static_cast<double>(bytes_sent + bytes_received) * per_byte +
           static_cast<double>(signatures + verifications) * per_signature +
           static_cast<double>(heavy_hmacs) * per_heavy_hmac;
  }
};

/// How a misbehaving node was caught.
enum class DetectionMethod {
  TestBySender,       // failed POR_RQST challenge (dropper)
  TestByDestination,  // inconsistent forwarding-quality declaration (liar)
  ChainCheck,         // broken f_AD = f1_m < f_BD = f2_m < f_CD chain (cheater)
};

struct DetectionEvent {
  NodeId culprit;
  NodeId detector;
  TimePoint at;
  DetectionMethod method;
  /// Detection latency measured from the moment the culprit became testable
  /// (Delta1 expiry of the relay under test), as in the paper's figures.
  Duration after_delta1;
};

class Collector {
 public:
  // -- observability ---------------------------------------------------------
  /// Mirror every lifecycle/detection record into `obs` (events + counters).
  /// The context must outlive the run; pass nullptr to detach (required
  /// before the owning run's ObsContext goes away, since Collectors are
  /// copied into results).
  void attach_obs(obs::ObsContext* obs) { obs_ = obs; }

  // -- message lifecycle -----------------------------------------------------
  void message_generated(MessageId id, NodeId src, NodeId dst, TimePoint at);
  void message_relayed(MessageId id, NodeId from, NodeId to, TimePoint at);
  void message_delivered(MessageId id, TimePoint at);

  // -- node accounting -------------------------------------------------------
  [[nodiscard]] NodeCosts& costs(NodeId n);
  [[nodiscard]] const NodeCosts& costs(NodeId n) const;

  // -- misbehaviour ----------------------------------------------------------
  void detection(const DetectionEvent& e);
  void node_evicted(NodeId n, TimePoint at);

  // -- results ---------------------------------------------------------------
  [[nodiscard]] std::size_t generated_count() const { return messages_.size(); }
  [[nodiscard]] std::size_t delivered_count() const;
  [[nodiscard]] double success_rate() const;
  /// Delays of delivered messages, seconds.
  [[nodiscard]] Samples delays() const;
  /// Replicas created per generated message (relay transfers, source copy excluded).
  [[nodiscard]] double avg_replicas() const;
  [[nodiscard]] const std::vector<DetectionEvent>& detections() const { return detections_; }
  [[nodiscard]] std::vector<NodeId> detected_nodes() const;
  [[nodiscard]] const std::map<NodeId, TimePoint>& evictions() const { return evictions_; }
  /// First detection event against `n`, if any.
  [[nodiscard]] std::optional<DetectionEvent> first_detection(NodeId n) const;

  [[nodiscard]] std::uint64_t total_relays() const { return total_relays_; }

  struct MessageRecord {
    NodeId src;
    NodeId dst;
    TimePoint created;
    std::optional<TimePoint> delivered;
    std::uint32_t replicas = 0;
    /// Time of the most recent relay hop (== created until the first hop);
    /// drives the per-hop delay histogram.
    TimePoint last_hop;
  };
  [[nodiscard]] const std::map<MessageId, MessageRecord>& messages() const {
    return messages_;
  }

 private:
  std::map<MessageId, MessageRecord> messages_;
  std::map<NodeId, NodeCosts> costs_;
  std::vector<DetectionEvent> detections_;
  std::map<NodeId, TimePoint> evictions_;
  std::uint64_t total_relays_ = 0;
  obs::ObsContext* obs_ = nullptr;
};

}  // namespace g2g::metrics
