#include "g2g/metrics/collector.hpp"

#include <algorithm>
#include <stdexcept>

namespace g2g::metrics {

void Collector::message_generated(MessageId id, NodeId src, NodeId dst, TimePoint at) {
  const auto [it, inserted] =
      messages_.emplace(id, MessageRecord{src, dst, at, std::nullopt, 0, at});
  if (!inserted) throw std::logic_error("duplicate message id");
  (void)it;
  if (obs_ != nullptr) {
    obs_->counters.generated->add();
    obs_->tracer.emit(
        {at, obs::EventKind::MessageGenerated, src, dst, id.value(), 0});
    obs_->tracer.open_message_span(at, id.value(), src, dst);
  }
}

void Collector::message_relayed(MessageId id, NodeId from, NodeId to, TimePoint at) {
  const auto it = messages_.find(id);
  if (it == messages_.end()) throw std::logic_error("relay of unknown message");
  ++it->second.replicas;
  ++total_relays_;
  const Duration hop = at - it->second.last_hop;
  it->second.last_hop = at;
  if (obs_ != nullptr) {
    obs_->counters.relays->add();
    obs_->counters.hop_delay_s->observe(hop.to_seconds());
    obs_->tracer.emit(
        {at, obs::EventKind::MessageRelayed, from, to, id.value(), hop.count()});
  }
}

void Collector::message_delivered(MessageId id, TimePoint at) {
  const auto it = messages_.find(id);
  if (it == messages_.end()) throw std::logic_error("delivery of unknown message");
  if (it->second.delivered.has_value()) return;  // keep the first time
  it->second.delivered = at;
  const Duration delay = at - it->second.created;
  if (obs_ != nullptr) {
    obs_->counters.deliveries->add();
    obs_->counters.delivery_delay_s->observe(delay.to_seconds());
    obs_->tracer.emit({at, obs::EventKind::MessageDelivered, it->second.src,
                       it->second.dst, id.value(), delay.count()});
    obs_->tracer.mark_message_delivered(id.value());
  }
}

void Collector::detection(const DetectionEvent& e) {
  detections_.push_back(e);
  if (obs_ != nullptr) {
    obs_->counters.detections->add();
    obs_->tracer.emit({e.at, obs::EventKind::Detection, e.detector, e.culprit, 0,
                       static_cast<std::int64_t>(e.method)});
  }
}

NodeCosts& Collector::costs(NodeId n) { return costs_[n]; }

const NodeCosts& Collector::costs(NodeId n) const {
  static const NodeCosts kEmpty{};
  const auto it = costs_.find(n);
  return it == costs_.end() ? kEmpty : it->second;
}

std::size_t Collector::delivered_count() const {
  return static_cast<std::size_t>(
      std::count_if(messages_.begin(), messages_.end(),
                    [](const auto& kv) { return kv.second.delivered.has_value(); }));
}

double Collector::success_rate() const {
  return messages_.empty() ? 0.0
                           : static_cast<double>(delivered_count()) /
                                 static_cast<double>(messages_.size());
}

Samples Collector::delays() const {
  Samples out;
  for (const auto& [id, rec] : messages_) {
    if (rec.delivered.has_value()) out.add((*rec.delivered - rec.created).to_seconds());
  }
  return out;
}

double Collector::avg_replicas() const {
  if (messages_.empty()) return 0.0;
  double total = 0.0;
  for (const auto& [id, rec] : messages_) total += rec.replicas;
  return total / static_cast<double>(messages_.size());
}

std::vector<NodeId> Collector::detected_nodes() const {
  std::vector<NodeId> out;
  for (const auto& d : detections_) out.push_back(d.culprit);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void Collector::node_evicted(NodeId n, TimePoint at) {
  evictions_.emplace(n, at);  // keep the first eviction time
}

std::optional<DetectionEvent> Collector::first_detection(NodeId n) const {
  std::optional<DetectionEvent> best;
  for (const auto& d : detections_) {
    if (d.culprit == n && (!best || d.at < best->at)) best = d;
  }
  return best;
}

}  // namespace g2g::metrics
