// Traffic generation.
//
// The paper's workload: "a set of messages is generated with sources and
// destinations chosen uniformly at random, and generation times from a
// Poisson process averaging one message per 4 seconds", over a 3-hour
// simulation with no generation in the last hour.
#pragma once

#include <cstdint>
#include <vector>

#include "g2g/util/ids.hpp"
#include "g2g/util/rng.hpp"
#include "g2g/util/time.hpp"

namespace g2g::sim {

struct TrafficDemand {
  MessageId id;
  NodeId src;
  NodeId dst;
  TimePoint at;
  std::size_t body_size;
};

struct TrafficConfig {
  /// Mean inter-arrival time of the Poisson process.
  Duration mean_interarrival = Duration::seconds(4.0);
  /// Generation window [start, end).
  TimePoint start = TimePoint::zero();
  TimePoint end = TimePoint::from_seconds(2.0 * 3600.0);
  std::size_t body_size = 64;
  std::uint64_t seed = 42;
};

/// Generate the full demand schedule for `node_count` nodes (src != dst,
/// both uniform). Deterministic in the seed.
[[nodiscard]] std::vector<TrafficDemand> generate_traffic(const TrafficConfig& config,
                                                          std::size_t node_count);

}  // namespace g2g::sim
