// Discrete-event simulation core.
//
// A Simulator is a deterministic time-ordered callback queue: events
// scheduled at equal timestamps fire in scheduling order. Contact traces are
// fed in through schedule_trace(), which turns every ContactEvent into an
// up/down callback pair on a ContactListener (the protocol Network).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "g2g/trace/contact.hpp"
#include "g2g/util/time.hpp"

namespace g2g::sim {

class Simulator {
 public:
  /// Events strictly after `horizon` are discarded at run() time.
  explicit Simulator(TimePoint horizon = TimePoint::max()) : horizon_(horizon) {}

  [[nodiscard]] TimePoint now() const { return now_; }
  [[nodiscard]] TimePoint horizon() const { return horizon_; }

  /// Schedule `fn` at absolute time `t` (>= now).
  void at(TimePoint t, std::function<void()> fn);
  /// Schedule `fn` after a delay from now.
  void after(Duration d, std::function<void()> fn) { at(now_ + d, std::move(fn)); }

  /// Run until the queue drains or the horizon passes. Returns events fired.
  std::size_t run();
  /// Stop after the currently-executing event.
  void stop() { stopped_ = true; }

  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

 private:
  struct Item {
    TimePoint t;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  TimePoint horizon_;
  TimePoint now_ = TimePoint::zero();
  std::uint64_t next_seq_ = 0;
  bool stopped_ = false;
  std::priority_queue<Item, std::vector<Item>, Later> queue_;
};

/// Receiver of trace-driven radio events.
class ContactListener {
 public:
  virtual ~ContactListener() = default;
  virtual void on_contact_up(TimePoint t, NodeId a, NodeId b) = 0;
  virtual void on_contact_down(TimePoint t, NodeId a, NodeId b) = 0;
};

/// Schedule every contact of a finalized trace onto the simulator.
/// The listener must outlive the run.
void schedule_trace(Simulator& sim, const trace::ContactTrace& trace,
                    ContactListener& listener);

}  // namespace g2g::sim
