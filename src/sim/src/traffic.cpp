#include "g2g/sim/traffic.hpp"

#include <stdexcept>

namespace g2g::sim {

std::vector<TrafficDemand> generate_traffic(const TrafficConfig& config,
                                            std::size_t node_count) {
  if (node_count < 2) throw std::invalid_argument("traffic needs >= 2 nodes");
  if (config.end <= config.start) throw std::invalid_argument("empty traffic window");
  if (config.mean_interarrival <= Duration::zero()) {
    throw std::invalid_argument("mean inter-arrival must be positive");
  }

  Rng rng(config.seed);
  std::vector<TrafficDemand> out;
  std::uint64_t next_id = 1;
  TimePoint t = config.start;
  for (;;) {
    t = t + Duration::seconds(rng.exponential(config.mean_interarrival.to_seconds()));
    if (t >= config.end) break;
    const auto src = static_cast<std::uint32_t>(rng.below(node_count));
    auto dst = static_cast<std::uint32_t>(rng.below(node_count - 1));
    if (dst >= src) ++dst;
    out.push_back(TrafficDemand{MessageId(next_id++), NodeId(src), NodeId(dst), t,
                                config.body_size});
  }
  return out;
}

}  // namespace g2g::sim
