#include "g2g/sim/simulator.hpp"

#include <stdexcept>

namespace g2g::sim {

void Simulator::at(TimePoint t, std::function<void()> fn) {
  if (t < now_) throw std::invalid_argument("cannot schedule in the past");
  queue_.push(Item{t, next_seq_++, std::move(fn)});
}

std::size_t Simulator::run() {
  std::size_t fired = 0;
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    // priority_queue::top returns const&; the item must be moved out before
    // pop, so copy the cheap fields and steal the callback.
    auto fn = std::move(const_cast<Item&>(queue_.top()).fn);
    const TimePoint t = queue_.top().t;
    queue_.pop();
    if (t > horizon_) continue;  // drain silently past the horizon
    now_ = t;
    fn();
    ++fired;
  }
  return fired;
}

void schedule_trace(Simulator& sim, const trace::ContactTrace& trace,
                    ContactListener& listener) {
  if (!trace.finalized()) throw std::invalid_argument("trace must be finalized");
  for (const auto& e : trace.events()) {
    sim.at(e.start, [&listener, e, &sim] { listener.on_contact_up(sim.now(), e.a, e.b); });
    sim.at(e.end, [&listener, e, &sim] { listener.on_contact_down(sim.now(), e.a, e.b); });
  }
}

}  // namespace g2g::sim
