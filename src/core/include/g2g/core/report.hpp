// Plain-text table and CSV reporting used by the bench harness to print the
// rows/series of each paper table and figure.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace g2g::core {

/// Fixed-width text table with a header row.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  void print(std::ostream& out) const;
  void print_csv(std::ostream& out) const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers.
[[nodiscard]] std::string fmt(double v, int precision = 2);
[[nodiscard]] std::string fmt_pct(double fraction, int precision = 1);
[[nodiscard]] std::string fmt_minutes(double minutes, int precision = 1);

}  // namespace g2g::core
