// Parallel sweep execution.
//
// Individual experiments are strictly single-threaded and deterministic;
// a sweep over configurations (a figure's x axis, a seed ensemble) is
// embarrassingly parallel. run_parallel farms the configs over a thread
// pool and returns results in input order.
#pragma once

#include <functional>
#include <vector>

#include "g2g/core/experiment.hpp"

namespace g2g::core {

/// Run every config, using up to `threads` worker threads (0 = hardware
/// concurrency). Results are positionally aligned with `configs`. Exceptions
/// from any run are rethrown on the calling thread after all workers join.
[[nodiscard]] std::vector<ExperimentResult> run_parallel(
    const std::vector<ExperimentConfig>& configs, std::size_t threads = 0);

/// Convenience: run `base` under seeds seed, seed+1, ..., seed+runs-1 in
/// parallel and aggregate exactly like run_repeated.
[[nodiscard]] AggregateResult run_repeated_parallel(const ExperimentConfig& base,
                                                    std::size_t runs,
                                                    std::size_t threads = 0);

}  // namespace g2g::core
