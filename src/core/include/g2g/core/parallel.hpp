// Parallel sweep execution.
//
// Individual experiments are strictly single-threaded and deterministic; a
// sweep over configurations (a figure's x axis, a seed ensemble) is
// embarrassingly parallel. The pool shards the index space into contiguous
// per-worker slices with atomic cursors; a worker that drains its own shard
// steals from the most-loaded remaining shard (ties broken by a per-shard
// RNG stream), so a handful of slow cells cannot idle the rest of the
// machine. Reduction is chunked: each run is folded into a compact summary
// as soon as it finishes, and summaries are reduced sequentially in index
// order — results are bit-identical regardless of the steal pattern, and a
// million-run sweep never holds a million full ExperimentResults.
//
// Failure semantics: a throwing run never abandons work. Every index is
// still executed (claimed indices are always run — the pre-2 behaviour of
// returning default-constructed results for claimed-but-skipped indices is
// regression-tested away in tests/parallel_test.cpp), each failure is
// recorded against its index, and after all workers join the error with the
// LOWEST index is rethrown — deterministic no matter which worker hit it
// first.
#pragma once

#include <functional>
#include <vector>

#include "g2g/core/experiment.hpp"

namespace g2g::core {

/// Run body(i) for every i in [0, count) on up to `threads` workers
/// (0 = hardware concurrency) using the work-stealing shard pool. All
/// indices run even if some throw; afterwards the exception with the lowest
/// index is rethrown on the calling thread.
void sharded_for(std::size_t count, std::size_t threads,
                 const std::function<void(std::size_t)>& body);

/// Run every config; results are positionally aligned with `configs`.
/// All configs run even if some throw; the lowest-index error is rethrown.
[[nodiscard]] std::vector<ExperimentResult> run_parallel(
    const std::vector<ExperimentConfig>& configs, std::size_t threads = 0);

/// Convenience: run `base` under seeds seed, seed+1, ..., seed+runs-1 in
/// parallel and aggregate exactly like run_repeated (bit-identical: the
/// per-run summaries are reduced in seed order).
[[nodiscard]] AggregateResult run_repeated_parallel(const ExperimentConfig& base,
                                                    std::size_t runs,
                                                    std::size_t threads = 0);

/// One cell of a figure sweep: a config repeated over `runs` seeds.
struct SweepCell {
  ExperimentConfig config;
  std::size_t runs = 1;
};

/// Per-cell perf telemetry, summed over the cell's runs: wall seconds spent
/// inside run_experiment and discrete events fired by the simulator (the
/// `g2g.sim.events_fired` counter). Feeds bench_results/BENCH_*.json; never
/// part of the scientific result, so it carries no determinism obligation.
struct CellTelemetry {
  double wall_s = 0.0;
  std::uint64_t sim_events = 0;
};

/// Run a whole figure's worth of cells through one pool: every (cell, seed)
/// pair becomes one unit of work, so parallelism is total-runs wide instead
/// of runs-per-cell wide. Aggregates are positionally aligned with `cells`
/// and identical to calling run_repeated on each cell. When `telemetry` is
/// non-null it is resized to cells.size() and filled with per-cell totals.
[[nodiscard]] std::vector<AggregateResult> run_sweep(const std::vector<SweepCell>& cells,
                                                     std::size_t threads = 0,
                                                     std::vector<CellTelemetry>* telemetry = nullptr);

}  // namespace g2g::core
