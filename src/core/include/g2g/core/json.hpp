// JSON export of experiment results, for external plotting/analysis.
//
// Deliberately dependency-free: a tiny writer that covers exactly what the
// result structures need (objects, arrays, strings, numbers, booleans).
// Output is deterministic (fixed key order, fixed float formatting).
#pragma once

#include <string>

#include "g2g/core/experiment.hpp"

namespace g2g::core {

/// Serialize a full experiment result: headline metrics, per-message
/// records, per-node costs, detection events, and the deviant set.
[[nodiscard]] std::string to_json(const ExperimentResult& result);

/// Serialize an aggregate (the mean/min/max rollup used by the benches).
[[nodiscard]] std::string to_json(const AggregateResult& aggregate);

/// Serialize a counter-registry snapshot: {"counters":{...},"histograms":{...}}.
/// Deterministic (name-sorted maps, integer counts).
[[nodiscard]] std::string to_json(const obs::Registry& registry);

/// Registry serialization with control over the fastpath.* cache counters.
/// to_json(ExperimentResult) excludes them (they describe how a run was
/// computed, not what it computed — the cache-on/off bit-identity guard
/// depends on that); to_json(Registry) includes them for obs reports.
[[nodiscard]] std::string registry_json(const obs::Registry& registry, bool include_fastpath);

/// Serialize a wall-clock stage profile: [{"name":...,"seconds":...},...].
/// NOT deterministic across runs — it measures the host, not the simulation —
/// so it is kept out of to_json(ExperimentResult).
[[nodiscard]] std::string to_json(const obs::StageProfile& stages);

/// Escape a string for embedding in JSON (quotes not included).
[[nodiscard]] std::string json_escape(const std::string& s);

}  // namespace g2g::core
