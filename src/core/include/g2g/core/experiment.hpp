// End-to-end experiment runner: trace generation, community detection,
// network construction, traffic injection, simulation, result extraction.
// Every bench binary and most integration tests drive this API.
#pragma once

#include <optional>
#include <vector>

#include "g2g/community/kclique.hpp"
#include "g2g/core/presets.hpp"
#include "g2g/crypto/suite.hpp"
#include "g2g/metrics/collector.hpp"
#include "g2g/obs/context.hpp"
#include "g2g/obs/stage.hpp"
#include "g2g/obs/tracer.hpp"
#include "g2g/proto/node.hpp"
#include "g2g/util/stats.hpp"

namespace g2g::core {

/// The six protocols of Fig. 8.
enum class Protocol {
  Epidemic,
  G2GEpidemic,
  DelegationFrequency,
  DelegationLastContact,
  G2GDelegationFrequency,
  G2GDelegationLastContact,
};

[[nodiscard]] const char* to_string(Protocol p);
[[nodiscard]] bool is_g2g(Protocol p);
[[nodiscard]] bool is_delegation(Protocol p);

struct ExperimentConfig {
  Protocol protocol = Protocol::Epidemic;
  Scenario scenario;

  /// Deviation model: `deviant_count` nodes (chosen uniformly by `seed`)
  /// run `deviation`, possibly only against outsiders.
  proto::Behavior deviation = proto::Behavior::Faithful;
  std::size_t deviant_count = 0;
  bool with_outsiders = false;

  /// Paper workload: 3-hour simulation, traffic only in the first 2 hours,
  /// Poisson with one message per 4 seconds, uniform src/dst.
  Duration sim_window = Duration::hours(3);
  Duration traffic_window = Duration::hours(2);
  Duration mean_interarrival = Duration::seconds(4);
  std::size_t message_body_size = 64;

  std::uint64_t seed = 1;
  /// Feed the pre-window trace history into the encounter tables (the
  /// Delegation qualities need more than 3 hours of history to be useful).
  bool warm_up_tables = true;
  /// nullptr => fast symmetric suite (default for sweeps).
  crypto::SuitePtr suite;
  /// Wrap the suite in the per-run verification cache (crypto fast path).
  /// Results are bit-identical either way — tests/crypto_fastpath_diff_test
  /// compares the serialized ExperimentResult across both settings — so this
  /// defaults to on; turn off to benchmark the reference path.
  bool crypto_fast_path = true;
  /// Override Delta1 (otherwise taken from the scenario per protocol family).
  std::optional<Duration> delta1_override;
  /// Delta2 as a multiple of Delta1 (paper: 2).
  double delta2_factor = 2.0;
  /// Relays each holder must find (paper: 2).
  std::size_t relay_fanout = 2;
  /// Ablations (see bench/ablation_mechanisms.cpp).
  bool per_holder_ttl = false;        ///< count Delta1 from receipt, not creation
  bool instant_pom_broadcast = false; ///< oracle PoM dissemination
  /// Finite-buffer extension for the vanilla protocols (0 = unlimited).
  std::size_t max_buffer_messages = 0;
  /// Radio bandwidth in bytes/second (0 = unlimited, the paper's assumption).
  double bandwidth_bytes_per_s = 0.0;

  /// Observability. Tracing never perturbs the simulation: a traced run is
  /// bit-identical to an untraced one (tests/obs_test.cpp).
  /// Stream every simulation event to this sink (e.g. an obs::JsonlSink);
  /// non-owning, must outlive the run. nullptr = no streaming.
  obs::EventSink* trace_sink = nullptr;
  /// Keep the last N events in memory and snapshot them into
  /// ExperimentResult::events. 0 = off.
  std::size_t trace_ring = 0;
};

struct ExperimentResult {
  // Forwarding performance.
  std::size_t generated = 0;
  std::size_t delivered = 0;
  double success_rate = 0.0;
  Samples delay_seconds;
  double avg_replicas = 0.0;

  // Misbehaviour detection.
  std::size_t deviant_count = 0;
  std::size_t detected_count = 0;
  double detection_rate = 0.0;
  Samples detection_minutes_after_delta1;  // first detection per culprit
  std::size_t false_positives = 0;         // detections of faithful nodes

  // Raw data for deeper analysis.
  metrics::Collector collector;
  std::vector<NodeId> deviants;
  std::size_t community_count = 0;

  // Observability snapshots.
  obs::Registry counters;         ///< protocol counters + histograms of the run
  obs::StageProfile stages;       ///< wall-clock pipeline stage times
  std::vector<obs::Event> events; ///< ring contents (only if trace_ring > 0)
};

/// Run one experiment. Deterministic in config.seed.
[[nodiscard]] ExperimentResult run_experiment(const ExperimentConfig& config);

/// Average key outcome metrics over `runs` seeds (seed, seed+1, ...).
struct AggregateResult {
  RunningStats success_rate;
  RunningStats avg_delay_s;
  RunningStats avg_replicas;
  RunningStats detection_rate;
  RunningStats detection_minutes;
  std::size_t false_positives = 0;
};
/// `last` (optional) receives the final run's full result — counters and
/// stage profile included — for observability reports over a sweep.
[[nodiscard]] AggregateResult run_repeated(ExperimentConfig config, std::size_t runs,
                                           ExperimentResult* last = nullptr);

/// Per-node payoff in the paper's sense: strictly positive for participants,
/// decreasing in energy and memory cost, zero if the node was evicted or its
/// service collapsed. Used by the Nash-equilibrium property tests.
struct PayoffWeights {
  // Calibrated so that a faithful participant's payoff is strictly positive
  // (service value dominates its protocol costs) while an evicted node's
  // payoff is 0 — the paper's shape: f_i > 0, decreasing in energy/memory,
  // collapsing on loss of service.
  double per_delivery = 2000.0;    // value of a delivered own message
  double per_reception = 2000.0;   // value of a received message
  double per_byte = 0.0001;        // energy per transferred byte
  double per_signature = 0.05;     // energy per sign/verify
  double per_heavy_hmac = 500.0;   // energy per storage-proof HMAC (>> signature)
  double per_mbyte_second = 0.01;  // memory cost
  double baseline = 20000.0;       // value of simply being part of the system
};
[[nodiscard]] double node_payoff(const ExperimentResult& r, NodeId n,
                                 const PayoffWeights& w = {});

}  // namespace g2g::core
