// Scenario presets reproducing the paper's experimental settings (Section V):
// trace stand-ins plus the per-scenario protocol timeouts.
//
//   * Infocom 05:  Epidemic TTL/Delta1 = 30 min, Delegation Delta1 = 45 min
//   * Cambridge 06: Epidemic TTL/Delta1 = 35 min, Delegation Delta1 = 75 min
//   * Delta2 = 2 * Delta1 everywhere; quality timeframe = 34 min.
#pragma once

#include <string>

#include "g2g/trace/synthetic.hpp"
#include "g2g/util/time.hpp"

namespace g2g::core {

struct Scenario {
  std::string name;
  trace::SyntheticConfig trace_config;
  Duration epidemic_delta1 = Duration::minutes(30);
  Duration delegation_delta1 = Duration::minutes(45);
  Duration quality_frame = Duration::minutes(34);
  /// k of the k-clique community detection run on the trace.
  std::size_t kclique_k = 3;
  /// Where inside the multi-day trace the 3-hour experiment window starts.
  TimePoint window_start = TimePoint::from_seconds(26.0 * 3600.0);
};

[[nodiscard]] Scenario infocom05_scenario(std::uint64_t trace_seed = 1);
[[nodiscard]] Scenario cambridge06_scenario(std::uint64_t trace_seed = 1);

}  // namespace g2g::core
