#include "g2g/core/report.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace g2g::core {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("table needs headers");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) throw std::invalid_argument("row width mismatch");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) widths[i] = std::max(widths[i], row[i].size());
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      out << (i == 0 ? "| " : " | ");
      out << row[i];
      out.write("                                                                ",
                static_cast<std::streamsize>(widths[i] - row[i].size()));
    }
    out << " |\n";
  };
  print_row(headers_);
  out << '|';
  for (const std::size_t w : widths) {
    for (std::size_t i = 0; i < w + 2; ++i) out << '-';
    out << '|';
  }
  out << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& out) const {
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << ',';
      out << row[i];
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string fmt_pct(double fraction, int precision) {
  return fmt(fraction * 100.0, precision) + "%";
}

std::string fmt_minutes(double minutes, int precision) {
  return fmt(minutes, precision) + "m";
}

}  // namespace g2g::core
