#include "g2g/core/experiment.hpp"

#include <algorithm>
#include <stdexcept>

#include "g2g/community/graph.hpp"
#include "g2g/proto/delegation.hpp"
#include "g2g/proto/epidemic.hpp"
#include "g2g/proto/g2g_delegation.hpp"
#include "g2g/proto/g2g_epidemic.hpp"
#include "g2g/proto/network.hpp"
#include "g2g/sim/traffic.hpp"
#include "g2g/trace/synthetic.hpp"

namespace g2g::core {

const char* to_string(Protocol p) {
  switch (p) {
    case Protocol::Epidemic: return "Epidemic";
    case Protocol::G2GEpidemic: return "G2G Epidemic";
    case Protocol::DelegationFrequency: return "Deleg.Dest Frequency";
    case Protocol::DelegationLastContact: return "Deleg.Dest Last Contact";
    case Protocol::G2GDelegationFrequency: return "G2G Dest Frequency";
    case Protocol::G2GDelegationLastContact: return "G2G Dest Last Contact";
  }
  return "?";
}

bool is_g2g(Protocol p) {
  return p == Protocol::G2GEpidemic || p == Protocol::G2GDelegationFrequency ||
         p == Protocol::G2GDelegationLastContact;
}

bool is_delegation(Protocol p) {
  return p != Protocol::Epidemic && p != Protocol::G2GEpidemic;
}

namespace {

proto::QualityKind quality_kind_of(Protocol p) {
  return (p == Protocol::DelegationLastContact || p == Protocol::G2GDelegationLastContact)
             ? proto::QualityKind::DestinationLastContact
             : proto::QualityKind::DestinationFrequency;
}

std::vector<NodeId> pick_deviants(Rng& rng, std::size_t node_count, std::size_t deviants) {
  std::vector<NodeId> all;
  all.reserve(node_count);
  for (std::size_t i = 0; i < node_count; ++i) all.emplace_back(static_cast<std::uint32_t>(i));
  rng.shuffle(all);
  all.resize(std::min(deviants, node_count));
  std::sort(all.begin(), all.end());
  return all;
}

struct RunInputs {
  const std::vector<proto::BehaviorConfig>* behaviors;
  const std::vector<sim::TrafficDemand>* demands;
  const trace::ContactTrace* full_trace;  // nullptr => no warm-up
  TimePoint window_start;
};

template <typename NodeT>
void run_network(const trace::ContactTrace& window, proto::NetworkConfig net_config,
                 const RunInputs& in, metrics::Collector& collector,
                 obs::StageProfile& stages) {
  proto::Network<NodeT> network(window, std::move(net_config), *in.behaviors, collector);
  {
    obs::StageTimer timer(stages, "warm_up");
    if (in.full_trace != nullptr) network.warm_up(in.full_trace->events(), in.window_start);
    network.schedule_traffic(*in.demands);
  }
  {
    obs::StageTimer timer(stages, "simulation");
    network.run();
  }
  // Wall clock spent re-verifying gossiped PoMs in batches (a slice of the
  // simulation stage, reported separately so the batch win is visible).
  stages.add("pom_batch_verify", network.pom_batch_seconds());
}

}  // namespace

ExperimentResult run_experiment(const ExperimentConfig& config) {
  Rng rng(config.seed * 0x9e3779b97f4a7c15ULL + 17);
  ExperimentResult result;

  // The run's observability bundle: counters always, tracing only on request.
  obs::ObsContext obs;
  if (config.trace_sink != nullptr) obs.tracer.add_sink(config.trace_sink);
  if (config.trace_ring > 0) obs.tracer.enable_ring(config.trace_ring);

  // 1. The trace substrate (full multi-day trace).
  obs::StageTimer trace_timer(result.stages, "trace_gen");
  trace::SyntheticConfig trace_config = config.scenario.trace_config;
  trace_config.seed = trace_config.seed * 1000003ULL + config.seed;
  const trace::SyntheticTrace synthetic = trace::generate_trace(trace_config);
  trace_timer.stop();

  // 2. Community detection on the full trace (k-clique percolation, as the
  //    paper does with the Palla et al. algorithm).
  obs::StageTimer community_timer(result.stages, "communities");
  const community::ContactGraph graph(
      synthetic.trace,
      community::ContactGraphConfig::for_span(synthetic.trace.end_time() -
                                              synthetic.trace.start_time()));
  community::CommunityMap communities =
      community::k_clique_communities(graph, config.scenario.kclique_k);
  community_timer.stop();

  // 3. The experiment window.
  const TimePoint w0 = config.scenario.window_start;
  const trace::ContactTrace window = synthetic.trace.slice(w0, w0 + config.sim_window);

  // 4. Protocol timing.
  const Duration delta1 = config.delta1_override.value_or(
      is_delegation(config.protocol) ? config.scenario.delegation_delta1
                                     : config.scenario.epidemic_delta1);

  proto::NodeConfig node_config;
  node_config.delta1 = delta1;
  node_config.delta2 = Duration::micros(
      static_cast<std::int64_t>(static_cast<double>(delta1.count()) * config.delta2_factor));
  node_config.relay_fanout = config.relay_fanout;
  node_config.quality_kind = quality_kind_of(config.protocol);
  node_config.quality_frame = config.scenario.quality_frame;
  node_config.global_ttl = !config.per_holder_ttl;
  node_config.max_buffer_messages = config.max_buffer_messages;

  proto::NetworkConfig net_config;
  net_config.node = node_config;
  net_config.suite = config.suite;
  net_config.communities = communities;
  net_config.horizon = TimePoint::zero() + config.sim_window;
  net_config.seed = config.seed * 7919 + 1;
  net_config.message_body_size = config.message_body_size;
  net_config.instant_pom_broadcast = config.instant_pom_broadcast;
  net_config.crypto_fast_path = config.crypto_fast_path;
  net_config.bandwidth_bytes_per_s = config.bandwidth_bytes_per_s;
  net_config.obs = &obs;

  // 5. Deviants.
  Rng deviant_rng = rng.fork(0xDE71A47);
  result.deviants = pick_deviants(deviant_rng, window.node_count(), config.deviant_count);
  std::vector<proto::BehaviorConfig> behaviors(window.node_count());
  for (const NodeId n : result.deviants) {
    behaviors[n.value()] =
        proto::BehaviorConfig{config.deviation, config.with_outsiders};
  }

  // 6. Traffic.
  sim::TrafficConfig traffic_config;
  traffic_config.mean_interarrival = config.mean_interarrival;
  traffic_config.start = TimePoint::zero();
  traffic_config.end = TimePoint::zero() + config.traffic_window;
  traffic_config.body_size = config.message_body_size;
  traffic_config.seed = config.seed * 104729 + 3;
  const auto demands = sim::generate_traffic(traffic_config, window.node_count());

  // 7. Run.
  const RunInputs inputs{&behaviors, &demands,
                         config.warm_up_tables ? &synthetic.trace : nullptr, w0};
  switch (config.protocol) {
    case Protocol::Epidemic:
      run_network<proto::EpidemicNode>(window, net_config, inputs, result.collector,
                                       result.stages);
      break;
    case Protocol::G2GEpidemic:
      run_network<proto::G2GEpidemicNode>(window, net_config, inputs, result.collector,
                                          result.stages);
      break;
    case Protocol::DelegationFrequency:
    case Protocol::DelegationLastContact:
      run_network<proto::DelegationNode>(window, net_config, inputs, result.collector,
                                         result.stages);
      break;
    case Protocol::G2GDelegationFrequency:
    case Protocol::G2GDelegationLastContact:
      run_network<proto::G2GDelegationNode>(window, net_config, inputs, result.collector,
                                            result.stages);
      break;
  }

  // 8. Extract.
  obs::StageTimer extract_timer(result.stages, "extraction");
  result.generated = result.collector.generated_count();
  result.delivered = result.collector.delivered_count();
  result.success_rate = result.collector.success_rate();
  result.delay_seconds = result.collector.delays();
  result.avg_replicas = result.collector.avg_replicas();
  result.community_count = communities.group_count();

  result.deviant_count = result.deviants.size();
  for (const NodeId n : result.deviants) {
    const auto first = result.collector.first_detection(n);
    if (first.has_value()) {
      ++result.detected_count;
      result.detection_minutes_after_delta1.add(first->after_delta1.to_minutes());
    }
  }
  result.detection_rate =
      result.deviant_count == 0
          ? 0.0
          : static_cast<double>(result.detected_count) /
                static_cast<double>(result.deviant_count);
  for (const NodeId n : result.collector.detected_nodes()) {
    if (!std::binary_search(result.deviants.begin(), result.deviants.end(), n)) {
      ++result.false_positives;
    }
  }
  extract_timer.stop();

  // Snapshot the run's observability state. The collector was detached from
  // the ObsContext when the network was destroyed, so the copies in `result`
  // never dangle.
  result.counters = obs.registry;
  if (config.trace_ring > 0) result.events = obs.tracer.ring();
  return result;
}

AggregateResult run_repeated(ExperimentConfig config, std::size_t runs,
                             ExperimentResult* last) {
  AggregateResult agg;
  for (std::size_t i = 0; i < runs; ++i) {
    config.seed = config.seed + (i == 0 ? 0 : 1);
    ExperimentResult r = run_experiment(config);
    agg.success_rate.add(r.success_rate);
    if (!r.delay_seconds.empty()) agg.avg_delay_s.add(r.delay_seconds.mean());
    agg.avg_replicas.add(r.avg_replicas);
    if (r.deviant_count > 0) {
      agg.detection_rate.add(r.detection_rate);
      if (!r.detection_minutes_after_delta1.empty()) {
        agg.detection_minutes.add(r.detection_minutes_after_delta1.mean());
      }
    }
    agg.false_positives += r.false_positives;
    if (last != nullptr && i + 1 == runs) *last = std::move(r);
  }
  return agg;
}

double node_payoff(const ExperimentResult& r, NodeId n, const PayoffWeights& w) {
  // Eviction (a verified PoM against the node) collapses the payoff.
  if (r.collector.evictions().contains(n)) return 0.0;

  double service = 0.0;
  for (const auto& [id, rec] : r.collector.messages()) {
    if (rec.src == n && rec.delivered.has_value()) service += w.per_delivery;
    if (rec.dst == n && rec.delivered.has_value()) service += w.per_reception;
  }
  const metrics::NodeCosts& c = r.collector.costs(n);
  const double energy = c.energy(w.per_byte, w.per_signature, w.per_heavy_hmac);
  const double memory = c.memory_byte_seconds / 1e6 * w.per_mbyte_second;
  return w.baseline + service - energy - memory;
}

}  // namespace g2g::core
