#include "g2g/core/json.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace g2g::core {

namespace {

std::string num(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

std::string stats_obj(const RunningStats& s) {
  std::ostringstream o;
  o << "{\"count\":" << s.count() << ",\"mean\":" << num(s.mean())
    << ",\"min\":" << num(s.min()) << ",\"max\":" << num(s.max())
    << ",\"stddev\":" << num(s.stddev()) << "}";
  return o.str();
}

const char* method_name(metrics::DetectionMethod m) {
  switch (m) {
    case metrics::DetectionMethod::TestBySender: return "test_by_sender";
    case metrics::DetectionMethod::TestByDestination: return "test_by_destination";
    case metrics::DetectionMethod::ChainCheck: return "chain_check";
  }
  return "unknown";
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string to_json(const ExperimentResult& r) {
  std::ostringstream o;
  o << "{";
  o << "\"generated\":" << r.generated << ",\"delivered\":" << r.delivered
    << ",\"success_rate\":" << num(r.success_rate)
    << ",\"avg_replicas\":" << num(r.avg_replicas)
    << ",\"avg_delay_s\":" << num(r.delay_seconds.mean())
    << ",\"median_delay_s\":" << num(r.delay_seconds.median())
    << ",\"community_count\":" << r.community_count
    << ",\"deviant_count\":" << r.deviant_count
    << ",\"detected_count\":" << r.detected_count
    << ",\"detection_rate\":" << num(r.detection_rate)
    << ",\"false_positives\":" << r.false_positives;

  o << ",\"deviants\":[";
  for (std::size_t i = 0; i < r.deviants.size(); ++i) {
    if (i > 0) o << ",";
    o << r.deviants[i].value();
  }
  o << "]";

  o << ",\"detections\":[";
  bool first = true;
  for (const auto& d : r.collector.detections()) {
    if (!first) o << ",";
    first = false;
    o << "{\"culprit\":" << d.culprit.value() << ",\"detector\":" << d.detector.value()
      << ",\"at_s\":" << num(d.at.to_seconds())
      << ",\"after_delta1_s\":" << num(d.after_delta1.to_seconds()) << ",\"method\":\""
      << method_name(d.method) << "\"}";
  }
  o << "]";

  o << ",\"messages\":[";
  first = true;
  for (const auto& [id, rec] : r.collector.messages()) {
    if (!first) o << ",";
    first = false;
    o << "{\"id\":" << id.value() << ",\"src\":" << rec.src.value()
      << ",\"dst\":" << rec.dst.value() << ",\"created_s\":" << num(rec.created.to_seconds())
      << ",\"replicas\":" << rec.replicas << ",\"delivered_s\":";
    if (rec.delivered.has_value()) {
      o << num(rec.delivered->to_seconds());
    } else {
      o << "null";
    }
    o << "}";
  }
  o << "]";

  // The counter snapshot is deterministic; the wall-clock stage profile is
  // not, so it is serialized separately (to_json(obs::StageProfile)). The
  // fastpath.* cache counters are excluded for the same reason: they reflect
  // how the run was computed (cache on/off), not what it computed, and this
  // serialization is the bit-identity oracle for cache-on vs cache-off runs.
  o << ",\"obs\":" << registry_json(r.counters, /*include_fastpath=*/false);

  o << "}";
  return o.str();
}

std::string registry_json(const obs::Registry& registry, bool include_fastpath) {
  std::ostringstream o;
  o << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : registry.counters()) {
    // Mechanism counters (cache hit rates, frame codec traffic, batch sizes)
    // describe how the run was computed, not what it computed; excluding them
    // keeps this serialization a bit-identity oracle across such rewirings.
    if (!include_fastpath &&
        (name.rfind("fastpath.", 0) == 0 || name.rfind("g2g.", 0) == 0)) {
      continue;
    }
    if (!first) o << ",";
    first = false;
    o << "\"" << json_escape(name) << "\":" << counter.value();
  }
  o << "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : registry.histograms()) {
    if (!first) o << ",";
    first = false;
    o << "\"" << json_escape(name) << "\":{\"count\":" << hist.count()
      << ",\"sum\":" << num(hist.sum()) << ",\"buckets\":[";
    const auto& edges = hist.edges();
    const auto& buckets = hist.buckets();
    for (std::size_t i = 0; i < buckets.size(); ++i) {
      if (i > 0) o << ",";
      o << "{\"le\":";
      if (i < edges.size()) {
        o << num(edges[i]);
      } else {
        o << "null";  // overflow bucket
      }
      o << ",\"n\":" << buckets[i] << "}";
    }
    o << "]}";
  }
  o << "}}";
  return o.str();
}

std::string to_json(const obs::Registry& registry) {
  return registry_json(registry, /*include_fastpath=*/true);
}

std::string to_json(const obs::StageProfile& stages) {
  std::ostringstream o;
  o << "[";
  bool first = true;
  for (const auto& stage : stages.stages()) {
    if (!first) o << ",";
    first = false;
    o << "{\"name\":\"" << json_escape(stage.name)
      << "\",\"seconds\":" << num(stage.seconds) << "}";
  }
  o << "]";
  return o.str();
}

std::string to_json(const AggregateResult& a) {
  std::ostringstream o;
  o << "{\"success_rate\":" << stats_obj(a.success_rate)
    << ",\"avg_delay_s\":" << stats_obj(a.avg_delay_s)
    << ",\"avg_replicas\":" << stats_obj(a.avg_replicas)
    << ",\"detection_rate\":" << stats_obj(a.detection_rate)
    << ",\"detection_minutes\":" << stats_obj(a.detection_minutes)
    << ",\"false_positives\":" << a.false_positives << "}";
  return o.str();
}

}  // namespace g2g::core
