#include "g2g/core/parallel.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace g2g::core {

std::vector<ExperimentResult> run_parallel(const std::vector<ExperimentConfig>& configs,
                                           std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, std::max<std::size_t>(1, configs.size()));

  std::vector<ExperimentResult> results(configs.size());
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= configs.size() || failed.load()) return;
      try {
        results[i] = run_experiment(configs[i]);
      } catch (...) {
        const std::scoped_lock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        failed.store(true);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

AggregateResult run_repeated_parallel(const ExperimentConfig& base, std::size_t runs,
                                      std::size_t threads) {
  std::vector<ExperimentConfig> configs(std::max<std::size_t>(1, runs), base);
  for (std::size_t i = 0; i < configs.size(); ++i) configs[i].seed = base.seed + i;
  const auto results = run_parallel(configs, threads);

  AggregateResult agg;
  for (const auto& r : results) {
    agg.success_rate.add(r.success_rate);
    if (!r.delay_seconds.empty()) agg.avg_delay_s.add(r.delay_seconds.mean());
    agg.avg_replicas.add(r.avg_replicas);
    if (r.deviant_count > 0) {
      agg.detection_rate.add(r.detection_rate);
      if (!r.detection_minutes_after_delta1.empty()) {
        agg.detection_minutes.add(r.detection_minutes_after_delta1.mean());
      }
    }
    agg.false_positives += r.false_positives;
  }
  return agg;
}

}  // namespace g2g::core
