#include "g2g/core/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>

#include "g2g/util/rng.hpp"

namespace g2g::core {

namespace {

struct Shard {
  // g2g-lint: allow(no-adhoc-atomic) -- work-stealing claim cursor, not a
  // counter; reduction is in index order, so the steal pattern never shows
  // up in results.
  std::atomic<std::size_t> next{0};
  std::size_t end = 0;
};

/// Compact per-run record: everything run_repeated's aggregation reads from
/// an ExperimentResult, in a few dozen bytes. Folding into these as runs
/// finish is what keeps huge sweeps memory-light.
struct RunSummary {
  double success_rate = 0.0;
  bool has_delay = false;
  double delay_mean_s = 0.0;
  double avg_replicas = 0.0;
  std::size_t deviant_count = 0;
  double detection_rate = 0.0;
  bool has_detection_minutes = false;
  double detection_minutes_mean = 0.0;
  std::size_t false_positives = 0;
  // Perf telemetry (CellTelemetry); rides along with the summary but is
  // folded separately and never enters the AggregateResult.
  double wall_s = 0.0;
  std::uint64_t sim_events = 0;
};

RunSummary summarize(const ExperimentResult& r) {
  RunSummary s;
  s.success_rate = r.success_rate;
  s.has_delay = !r.delay_seconds.empty();
  if (s.has_delay) s.delay_mean_s = r.delay_seconds.mean();
  s.avg_replicas = r.avg_replicas;
  s.deviant_count = r.deviant_count;
  s.detection_rate = r.detection_rate;
  s.has_detection_minutes = !r.detection_minutes_after_delta1.empty();
  if (s.has_detection_minutes) {
    s.detection_minutes_mean = r.detection_minutes_after_delta1.mean();
  }
  s.false_positives = r.false_positives;
  s.sim_events = r.counters.value("g2g.sim.events_fired");
  return s;
}

void fold(AggregateResult& agg, const RunSummary& s) {
  agg.success_rate.add(s.success_rate);
  if (s.has_delay) agg.avg_delay_s.add(s.delay_mean_s);
  agg.avg_replicas.add(s.avg_replicas);
  if (s.deviant_count > 0) {
    agg.detection_rate.add(s.detection_rate);
    if (s.has_detection_minutes) agg.detection_minutes.add(s.detection_minutes_mean);
  }
  agg.false_positives += s.false_positives;
}

}  // namespace

void sharded_for(std::size_t count, std::size_t threads,
                 const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, count);

  // Contiguous shards: worker s owns [s*count/T, (s+1)*count/T). Contiguity
  // keeps each worker on a coherent slice of the sweep until stealing starts.
  std::vector<Shard> shards(threads);
  for (std::size_t s = 0; s < threads; ++s) {
    shards[s].next.store(count * s / threads, std::memory_order_relaxed);
    shards[s].end = count * (s + 1) / threads;
  }

  std::mutex error_mutex;
  std::vector<std::pair<std::size_t, std::exception_ptr>> errors;

  const auto run_index = [&](std::size_t i) {
    try {
      body(i);
    } catch (...) {
      const std::scoped_lock lock(error_mutex);
      errors.emplace_back(i, std::current_exception());
    }
  };

  const auto worker = [&](std::size_t self) {
    // Drain the owned shard first.
    for (;;) {
      const std::size_t i = shards[self].next.fetch_add(1);
      if (i >= shards[self].end) break;
      run_index(i);
    }
    // Steal: prefer the most-loaded victim; break ties with a per-shard RNG
    // stream so concurrent thieves spread out instead of convoying.
    Rng steal_rng(0x57EA1BA5EULL ^ self);
    for (;;) {
      std::size_t victim = threads;
      std::size_t victim_left = 0;
      std::size_t ties = 0;
      for (std::size_t s = 0; s < threads; ++s) {
        if (s == self) continue;
        const std::size_t cursor = shards[s].next.load(std::memory_order_relaxed);
        const std::size_t left = cursor < shards[s].end ? shards[s].end - cursor : 0;
        if (left > victim_left) {
          victim = s;
          victim_left = left;
          ties = 1;
        } else if (left != 0 && left == victim_left) {
          // Reservoir pick among equally-loaded victims.
          ++ties;
          if (steal_rng.below(ties) == 0) victim = s;
        }
      }
      if (victim == threads) return;  // nothing left anywhere
      const std::size_t i = shards[victim].next.fetch_add(1);
      if (i >= shards[victim].end) continue;  // lost the race; rescan
      run_index(i);
    }
  };

  if (threads == 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker, t);
    for (auto& t : pool) t.join();
  }

  if (!errors.empty()) {
    // Every index ran; rethrow the failure of the lowest index so the caller
    // sees the same error no matter how the work was interleaved.
    const auto lowest =
        std::min_element(errors.begin(), errors.end(),
                         [](const auto& a, const auto& b) { return a.first < b.first; });
    std::rethrow_exception(lowest->second);
  }
}

std::vector<ExperimentResult> run_parallel(const std::vector<ExperimentConfig>& configs,
                                           std::size_t threads) {
  std::vector<ExperimentResult> results(configs.size());
  sharded_for(configs.size(), threads,
              [&](std::size_t i) { results[i] = run_experiment(configs[i]); });
  return results;
}

AggregateResult run_repeated_parallel(const ExperimentConfig& base, std::size_t runs,
                                      std::size_t threads) {
  const SweepCell cell{base, std::max<std::size_t>(1, runs)};
  return run_sweep({cell}, threads).front();
}

std::vector<AggregateResult> run_sweep(const std::vector<SweepCell>& cells,
                                       std::size_t threads,
                                       std::vector<CellTelemetry>* telemetry) {
  // Flatten every (cell, seed) pair into one global index space so the pool
  // is total-runs wide; per-run summaries land at their flat index and are
  // reduced per cell in seed order afterwards (deterministic regardless of
  // which worker ran what).
  std::vector<std::size_t> cell_of;
  std::vector<std::size_t> run_of;
  for (std::size_t c = 0; c < cells.size(); ++c) {
    const std::size_t runs = std::max<std::size_t>(1, cells[c].runs);
    for (std::size_t r = 0; r < runs; ++r) {
      cell_of.push_back(c);
      run_of.push_back(r);
    }
  }

  std::vector<RunSummary> summaries(cell_of.size());
  sharded_for(cell_of.size(), threads, [&](std::size_t i) {
    ExperimentConfig config = cells[cell_of[i]].config;
    config.seed += run_of[i];
    // steady_clock: perf telemetry only; results are summarized from the
    // run, never from the clock.
    const auto t0 = std::chrono::steady_clock::now();
    summaries[i] = summarize(run_experiment(config));
    summaries[i].wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  });

  std::vector<AggregateResult> aggregates(cells.size());
  if (telemetry != nullptr) {
    telemetry->assign(cells.size(), CellTelemetry{});
  }
  for (std::size_t i = 0; i < summaries.size(); ++i) {
    fold(aggregates[cell_of[i]], summaries[i]);
    if (telemetry != nullptr) {
      (*telemetry)[cell_of[i]].wall_s += summaries[i].wall_s;
      (*telemetry)[cell_of[i]].sim_events += summaries[i].sim_events;
    }
  }
  return aggregates;
}

}  // namespace g2g::core
