#include "g2g/core/presets.hpp"

namespace g2g::core {

Scenario infocom05_scenario(std::uint64_t trace_seed) {
  Scenario s;
  s.name = "infocom05";
  s.trace_config = trace::infocom05(trace_seed);
  s.epidemic_delta1 = Duration::minutes(30);
  s.delegation_delta1 = Duration::minutes(45);
  s.kclique_k = 4;
  // Day 2 of the conference, mid-morning: dense contact period.
  s.window_start = TimePoint::from_seconds(26.0 * 3600.0);
  return s;
}

Scenario cambridge06_scenario(std::uint64_t trace_seed) {
  Scenario s;
  s.name = "cambridge06";
  s.trace_config = trace::cambridge06(trace_seed);
  s.epidemic_delta1 = Duration::minutes(35);
  s.delegation_delta1 = Duration::minutes(75);
  s.kclique_k = 3;
  // Day 3, working hours (the trace has a diurnal cycle).
  s.window_start = TimePoint::from_seconds((2.0 * 24.0 + 10.0) * 3600.0);
  return s;
}

}  // namespace g2g::core
