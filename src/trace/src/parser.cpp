#include "g2g/trace/parser.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace g2g::trace {

ContactTrace read_trace(std::istream& in) {
  ContactTrace trace;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream ls(line);
    std::uint32_t a = 0;
    std::uint32_t b = 0;
    double start = 0.0;
    double end = 0.0;
    if (!(ls >> a >> b >> start >> end)) {
      throw std::runtime_error("trace parse error at line " + std::to_string(line_no));
    }
    trace.add(NodeId(a), NodeId(b), TimePoint::from_seconds(start),
              TimePoint::from_seconds(end));
  }
  trace.finalize();
  return trace;
}

ContactTrace load_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  return read_trace(in);
}

void write_trace(std::ostream& out, const ContactTrace& trace) {
  out << "# g2g contact trace: <node_a> <node_b> <start_s> <end_s>\n";
  out << "# nodes=" << trace.node_count() << " contacts=" << trace.size() << "\n";
  for (const auto& e : trace.events()) {
    out << e.a.value() << ' ' << e.b.value() << ' ' << e.start.to_seconds() << ' '
        << e.end.to_seconds() << '\n';
  }
}

void save_trace(const std::string& path, const ContactTrace& trace) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open trace file for writing: " + path);
  write_trace(out, trace);
}

}  // namespace g2g::trace
