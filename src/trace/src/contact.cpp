#include "g2g/trace/contact.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace g2g::trace {

void ContactTrace::add(NodeId a, NodeId b, TimePoint start, TimePoint end) {
  if (a == b) throw std::invalid_argument("self-contact");
  if (end <= start) throw std::invalid_argument("empty or negative contact interval");
  if (!a.valid() || !b.valid()) throw std::invalid_argument("invalid node id");
  if (a > b) std::swap(a, b);
  events_.push_back(ContactEvent{a, b, start, end});
  node_count_ = std::max<std::size_t>(node_count_, b.value() + 1);
  finalized_ = false;
}

void ContactTrace::finalize() {
  // Coalesce per-pair overlapping intervals, then sort globally by start.
  std::map<std::pair<NodeId, NodeId>, std::vector<ContactEvent>> by_pair;
  for (const auto& e : events_) by_pair[{e.a, e.b}].push_back(e);

  std::vector<ContactEvent> merged;
  merged.reserve(events_.size());
  for (auto& [pair, list] : by_pair) {
    std::sort(list.begin(), list.end(),
              [](const ContactEvent& x, const ContactEvent& y) { return x.start < y.start; });
    for (const auto& e : list) {
      if (!merged.empty() && merged.back().a == e.a && merged.back().b == e.b &&
          e.start <= merged.back().end) {
        merged.back().end = std::max(merged.back().end, e.end);
      } else {
        merged.push_back(e);
      }
    }
  }
  std::sort(merged.begin(), merged.end(), [](const ContactEvent& x, const ContactEvent& y) {
    if (x.start != y.start) return x.start < y.start;
    if (x.a != y.a) return x.a < y.a;
    return x.b < y.b;
  });
  events_ = std::move(merged);
  finalized_ = true;
}

TimePoint ContactTrace::end_time() const {
  TimePoint latest = TimePoint::zero();
  for (const auto& e : events_) latest = std::max(latest, e.end);
  return latest;
}

TimePoint ContactTrace::start_time() const {
  if (events_.empty()) return TimePoint::zero();
  TimePoint earliest = TimePoint::max();
  for (const auto& e : events_) earliest = std::min(earliest, e.start);
  return earliest;
}

ContactTrace ContactTrace::slice(TimePoint from, TimePoint to) const {
  if (to <= from) throw std::invalid_argument("empty slice window");
  ContactTrace out;
  for (const auto& e : events_) {
    const TimePoint s = std::max(e.start, from);
    const TimePoint t = std::min(e.end, to);
    if (s < t) {
      out.add(e.a, e.b, TimePoint::zero() + (s - from), TimePoint::zero() + (t - from));
    }
  }
  // Preserve the node universe even if some nodes have no contact in-window.
  out.node_count_ = std::max(out.node_count_, node_count_);
  out.finalize();
  return out;
}

}  // namespace g2g::trace
