#include "g2g/trace/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "g2g/util/rng.hpp"

namespace g2g::trace {

namespace {

/// Unit-mean heavy-tailed gap multiplier: Pareto/exponential mixture.
double gap_multiplier(Rng& rng, const SyntheticConfig& cfg) {
  if (rng.chance(cfg.pareto_weight)) {
    // Pareto with mean alpha*xm/(alpha-1) == 1  =>  xm = (alpha-1)/alpha.
    const double xm = (cfg.pareto_alpha - 1.0) / cfg.pareto_alpha;
    return rng.pareto(xm, cfg.pareto_alpha);
  }
  return rng.exponential(1.0);
}

/// Diurnal acceptance probability at time t.
double activity(const SyntheticConfig& cfg, TimePoint t) {
  if (!cfg.diurnal) return 1.0;
  const double hour = std::fmod(t.to_seconds() / 3600.0, 24.0);
  const bool day = hour >= cfg.day_start_hour && hour < cfg.day_end_hour;
  return day ? 1.0 : cfg.night_activity;
}

std::vector<std::vector<NodeId>> assign_communities(Rng& rng, const SyntheticConfig& cfg) {
  std::vector<std::vector<NodeId>> communities(cfg.communities);
  // Round-robin base assignment keeps community sizes balanced.
  std::vector<NodeId> nodes;
  nodes.reserve(cfg.nodes);
  for (std::uint32_t i = 0; i < cfg.nodes; ++i) nodes.emplace_back(i);
  rng.shuffle(nodes);
  for (std::uint32_t i = 0; i < cfg.nodes; ++i) {
    communities[i % cfg.communities].push_back(nodes[i]);
  }
  // Travelers additionally join a second community.
  const auto traveler_count =
      static_cast<std::uint32_t>(static_cast<double>(cfg.nodes) * cfg.traveler_fraction);
  for (std::uint32_t i = 0; i < traveler_count && cfg.communities > 1; ++i) {
    const NodeId n = nodes[i];
    const std::uint32_t home = i % cfg.communities;
    std::uint32_t other = static_cast<std::uint32_t>(rng.below(cfg.communities));
    if (other == home) other = (other + 1) % cfg.communities;
    communities[other].push_back(n);
  }
  for (auto& c : communities) std::sort(c.begin(), c.end());
  return communities;
}

}  // namespace

SyntheticTrace generate_trace(const SyntheticConfig& cfg) {
  if (cfg.nodes < 2) throw std::invalid_argument("need at least 2 nodes");
  if (cfg.communities == 0 || cfg.communities > cfg.nodes) {
    throw std::invalid_argument("bad community count");
  }
  if (cfg.pareto_alpha <= 1.0) throw std::invalid_argument("pareto_alpha must exceed 1");

  Rng rng(cfg.seed);
  SyntheticTrace out;
  out.communities = assign_communities(rng, cfg);

  // Shared-community membership lookup.
  std::vector<std::vector<bool>> member(cfg.communities, std::vector<bool>(cfg.nodes, false));
  for (std::uint32_t c = 0; c < cfg.communities; ++c) {
    for (const NodeId n : out.communities[c]) member[c][n.value()] = true;
  }
  const auto share_community = [&](std::uint32_t a, std::uint32_t b) {
    for (std::uint32_t c = 0; c < cfg.communities; ++c) {
      if (member[c][a] && member[c][b]) return true;
    }
    return false;
  };

  const double duration_s = cfg.duration.to_seconds();
  const double log_mean_contact =
      std::log(cfg.mean_contact_s) - cfg.contact_sigma * cfg.contact_sigma / 2.0;

  // Per-node activity multipliers (unit-mean lognormal on the *rate*).
  // Normalized to an exact unit mean per trace: with only ~40 draws the
  // sample mean of a heavy-tailed lognormal varies a lot, which would make
  // the *global* contact density swing across seeds — we want heterogeneity
  // between nodes, not between traces.
  std::vector<double> node_activity(cfg.nodes, 1.0);
  if (cfg.node_activity_sigma > 0.0) {
    Rng act_rng = rng.fork(0xAC7);
    const double sig = cfg.node_activity_sigma;
    double sum = 0.0;
    for (auto& a : node_activity) {
      a = act_rng.lognormal(-sig * sig / 2.0, sig);
      sum += a;
    }
    const double mean = sum / static_cast<double>(cfg.nodes);
    for (auto& a : node_activity) a /= mean;
  }

  for (std::uint32_t a = 0; a < cfg.nodes; ++a) {
    for (std::uint32_t b = a + 1; b < cfg.nodes; ++b) {
      Rng pair_rng = rng.fork((static_cast<std::uint64_t>(a) << 32) | b);
      const double base_gap =
          share_community(a, b) ? cfg.intra_mean_gap_s : cfg.inter_mean_gap_s;
      // Per-pair heterogeneity: unit-mean lognormal multiplier on the gap.
      const double sigma = cfg.rate_heterogeneity_sigma;
      const double pair_scale = pair_rng.lognormal(-sigma * sigma / 2.0, sigma);
      const double mean_gap = base_gap * pair_scale / (node_activity[a] * node_activity[b]);

      // Renewal process: alternate (gap, contact) until the trace ends.
      // The first gap gets a random phase so pairs don't synchronize at t=0.
      double t = pair_rng.uniform(0.0, mean_gap);
      while (t < duration_s) {
        const double gap = mean_gap * gap_multiplier(pair_rng, cfg);
        t += gap;
        if (t >= duration_s) break;
        const double dur = std::max(
            1.0, pair_rng.lognormal(log_mean_contact, cfg.contact_sigma));
        const TimePoint start = TimePoint::from_seconds(t);
        if (pair_rng.chance(activity(cfg, start))) {
          const double end_s = std::min(t + dur, duration_s);
          if (end_s > t) {
            out.trace.add(NodeId(a), NodeId(b), start, TimePoint::from_seconds(end_s));
          }
        }
        t += dur;
      }
    }
  }
  out.trace.finalize();
  return out;
}

SyntheticConfig infocom05(std::uint64_t seed) {
  SyntheticConfig cfg;
  cfg.nodes = 41;
  cfg.duration = Duration::days(3);
  cfg.communities = 4;
  cfg.traveler_fraction = 0.1;
  cfg.intra_mean_gap_s = 2800.0;    // conference crowd: group-mates re-meet hourly
  cfg.inter_mean_gap_s = 86400.0;   // cross-group meetings daily
  cfg.rate_heterogeneity_sigma = 0.5;
  cfg.node_activity_sigma = 0.8;    // iMote-like device heterogeneity
  cfg.mean_contact_s = 180.0;
  cfg.diurnal = false;  // 3-hour experiment windows are taken inside sessions
  cfg.seed = seed;
  return cfg;
}

SyntheticConfig cambridge06(std::uint64_t seed) {
  SyntheticConfig cfg;
  cfg.nodes = 36;
  cfg.duration = Duration::days(11);
  cfg.communities = 2;  // two student cohorts, as detected in the paper's trace
  cfg.traveler_fraction = 0.08;
  cfg.intra_mean_gap_s = 5000.0;    // lab-mates: sparser than a conference
  cfg.inter_mean_gap_s = 125000.0;  // cross-cohort every day or two
  cfg.rate_heterogeneity_sigma = 0.5;
  cfg.node_activity_sigma = 0.8;
  cfg.mean_contact_s = 300.0;       // longer co-location (shared offices)
  cfg.diurnal = true;
  cfg.seed = seed;
  return cfg;
}

}  // namespace g2g::trace
