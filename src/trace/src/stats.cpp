#include "g2g/trace/stats.hpp"

#include <stdexcept>

namespace g2g::trace {

TraceStats::TraceStats(const ContactTrace& trace) {
  if (!trace.finalized()) throw std::invalid_argument("trace must be finalized");
  contact_count_ = trace.size();
  span_ = trace.end_time() - trace.start_time();

  std::map<PairKey, TimePoint> last_end;
  const TimePoint trace_end = trace.end_time();
  for (const auto& e : trace.events()) {
    durations_.add(e.duration().to_seconds());
    const PairKey key = make_pair_key(e.a, e.b);
    ++per_pair_contacts_[key];
    const auto it = last_end.find(key);
    if (it != last_end.end()) {
      const double gap = (e.start - it->second).to_seconds();
      if (gap > 0) {
        inter_contacts_.add(gap);
        remeet_gaps_.emplace_back(gap, false);
      }
    }
    last_end[key] = e.end;
  }
  // Censored observations: pairs whose last contact never recurs before the
  // trace ends. Counting them keeps remeet_probability honest.
  for (const auto& [key, end] : last_end) {
    const double tail = (trace_end - end).to_seconds();
    if (tail > 0) remeet_gaps_.emplace_back(tail, true);
  }
}

double TraceStats::contacts_per_hour() const {
  const double hours = span_.to_seconds() / 3600.0;
  return hours > 0 ? static_cast<double>(contact_count_) / hours : 0.0;
}

double TraceStats::remeet_probability(Duration window) const {
  const double w = window.to_seconds();
  std::size_t observed = 0;  // re-met within w
  std::size_t at_risk = 0;   // could have re-met within w (not right-censored short)
  for (const auto& [gap, censored] : remeet_gaps_) {
    if (!censored) {
      ++at_risk;
      if (gap <= w) ++observed;
    } else if (gap >= w) {
      // Censored but the observation window was long enough: counts as a miss.
      ++at_risk;
    }
  }
  return at_risk > 0 ? static_cast<double>(observed) / static_cast<double>(at_risk) : 0.0;
}

}  // namespace g2g::trace
