// Synthetic social-mobility contact traces.
//
// Substitute for the CRAWDAD Infocom 05 / Cambridge 06 iMote traces (not
// redistributable offline). The generator reproduces the properties the
// paper's protocols rely on:
//   * community structure — intra-community pairs meet often, inter rarely,
//     with "traveler" nodes bridging two communities (k-clique detectable);
//   * recurring pair meetings — high P(re-meet within Delta2), which drives
//     the test-phase detection rate;
//   * heavy-tailed inter-contact gaps (Pareto/exponential mixture) and
//     heterogeneous per-pair rates (lognormal multipliers);
//   * optional diurnal activity cycle for the multi-day campus trace.
//
// Presets infocom05() and cambridge06() are calibrated so vanilla Epidemic
// Forwarding's delivery and the pair re-meet probabilities land in the same
// regime the paper reports.
#pragma once

#include <cstdint>
#include <vector>

#include "g2g/trace/contact.hpp"

namespace g2g::trace {

struct SyntheticConfig {
  std::uint32_t nodes = 41;
  Duration duration = Duration::days(3);
  std::uint32_t communities = 4;
  /// Fraction of nodes that belong to two communities (social bridges).
  double traveler_fraction = 0.15;

  /// Mean inter-contact gap for a pair sharing a community, seconds.
  double intra_mean_gap_s = 2400.0;
  /// Mean inter-contact gap for a cross-community pair, seconds.
  double inter_mean_gap_s = 36000.0;
  /// Heavy-tail mixture for gaps: with `pareto_weight` draw
  /// Pareto(shape=pareto_alpha), otherwise exponential; both unit-mean.
  double pareto_alpha = 1.6;
  double pareto_weight = 0.35;
  /// Per-pair lognormal rate multiplier (sigma of underlying normal).
  double rate_heterogeneity_sigma = 0.6;
  /// Per-node lognormal activity multiplier: the real iMote traces are very
  /// heterogeneous (some devices barely scan); a pair's rate is scaled by the
  /// product of its endpoints' activities. 0 disables.
  double node_activity_sigma = 0.0;

  /// Contact durations: lognormal with this mean (seconds) and sigma.
  double mean_contact_s = 150.0;
  double contact_sigma = 0.8;

  /// Diurnal thinning: contacts at night are kept with `night_activity` prob.
  bool diurnal = false;
  double night_activity = 0.15;
  double day_start_hour = 8.0;
  double day_end_hour = 22.0;

  std::uint64_t seed = 1;
};

struct SyntheticTrace {
  ContactTrace trace;
  /// Ground-truth communities (a traveler node appears in two of them).
  std::vector<std::vector<NodeId>> communities;
};

/// Generate a finalized trace from the model.
[[nodiscard]] SyntheticTrace generate_trace(const SyntheticConfig& config);

/// 41 nodes / 3 days / conference density (Infocom 05 stand-in).
[[nodiscard]] SyntheticConfig infocom05(std::uint64_t seed = 1);
/// 36 nodes / 11 days / campus density with diurnal cycle (Cambridge 06 stand-in).
[[nodiscard]] SyntheticConfig cambridge06(std::uint64_t seed = 1);

}  // namespace g2g::trace
