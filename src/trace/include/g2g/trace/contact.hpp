// Contact events and traces.
//
// A trace is the ground truth a PSN simulation runs on: a set of intervals
// during which two nodes are in radio range. Real CRAWDAD traces load through
// trace::load_trace (parser.hpp); synthetic ones come from synthetic.hpp.
#pragma once

#include <cstddef>
#include <vector>

#include "g2g/util/ids.hpp"
#include "g2g/util/time.hpp"

namespace g2g::trace {

/// One radio contact between two nodes over [start, end).
struct ContactEvent {
  NodeId a;
  NodeId b;
  TimePoint start;
  TimePoint end;

  [[nodiscard]] Duration duration() const { return end - start; }
  [[nodiscard]] bool involves(NodeId n) const { return a == n || b == n; }
  [[nodiscard]] NodeId peer_of(NodeId n) const { return a == n ? b : a; }

  bool operator==(const ContactEvent&) const = default;
};

/// An immutable-after-finalize collection of contacts, sorted by start time.
class ContactTrace {
 public:
  ContactTrace() = default;

  /// Add a contact; `a != b`, `end > start`. Normalizes so a < b.
  void add(NodeId a, NodeId b, TimePoint start, TimePoint end);

  /// Sort by start time and coalesce overlapping intervals of the same pair.
  /// Must be called once after the last add() and before queries.
  void finalize();
  [[nodiscard]] bool finalized() const { return finalized_; }

  [[nodiscard]] const std::vector<ContactEvent>& events() const { return events_; }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] bool empty() const { return events_.empty(); }

  /// Number of distinct nodes = max id + 1 (ids are expected to be dense).
  [[nodiscard]] std::size_t node_count() const { return node_count_; }
  /// End of the last contact (zero on empty trace).
  [[nodiscard]] TimePoint end_time() const;
  /// Start of the first contact (zero on empty trace).
  [[nodiscard]] TimePoint start_time() const;

  /// Contacts clipped to [from, to): events overlapping the window, with
  /// start/end clamped, re-based so the window start becomes t=0.
  [[nodiscard]] ContactTrace slice(TimePoint from, TimePoint to) const;

 private:
  std::vector<ContactEvent> events_;
  std::size_t node_count_ = 0;
  bool finalized_ = false;
};

}  // namespace g2g::trace
