// Text serialization of contact traces.
//
// Format (CRAWDAD-imote-like, one contact per line, times in seconds):
//   <node_a> <node_b> <start_seconds> <end_seconds>
// Blank lines and lines starting with '#' are ignored. This is the format the
// published Haggle/iMote contact lists are commonly distributed in, so the
// real Infocom 05 / Cambridge 06 data can be dropped in directly.
#pragma once

#include <iosfwd>
#include <string>

#include "g2g/trace/contact.hpp"

namespace g2g::trace {

/// Parse a trace from a stream; throws std::runtime_error on malformed lines.
[[nodiscard]] ContactTrace read_trace(std::istream& in);
/// Parse a trace from a file path.
[[nodiscard]] ContactTrace load_trace(const std::string& path);

/// Write a trace in the same format (with a descriptive header comment).
void write_trace(std::ostream& out, const ContactTrace& trace);
void save_trace(const std::string& path, const ContactTrace& trace);

}  // namespace g2g::trace
