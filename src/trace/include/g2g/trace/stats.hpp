// Trace statistics: the properties the paper's mechanisms lean on —
// recurring pair meetings (test-phase detection window), heterogeneous
// contact rates, and community clustering.
#pragma once

#include <map>
#include <utility>

#include "g2g/trace/contact.hpp"
#include "g2g/util/stats.hpp"

namespace g2g::trace {

struct PairKey {
  NodeId a;
  NodeId b;
  auto operator<=>(const PairKey&) const = default;
};

[[nodiscard]] inline PairKey make_pair_key(NodeId x, NodeId y) {
  return x < y ? PairKey{x, y} : PairKey{y, x};
}

/// Aggregate statistics over a finalized trace.
class TraceStats {
 public:
  explicit TraceStats(const ContactTrace& trace);

  [[nodiscard]] std::size_t contact_count() const { return contact_count_; }
  [[nodiscard]] std::size_t pair_count() const { return per_pair_contacts_.size(); }
  [[nodiscard]] double contacts_per_hour() const;
  [[nodiscard]] const Samples& contact_durations() const { return durations_; }
  /// Gap between consecutive contacts of the same pair, seconds.
  [[nodiscard]] const Samples& inter_contact_times() const { return inter_contacts_; }
  [[nodiscard]] const std::map<PairKey, std::size_t>& per_pair_contacts() const {
    return per_pair_contacts_;
  }

  /// Empirical probability that a pair which just finished a contact meets
  /// again within `window`. This is the quantity that makes Delta2 = 2*Delta1
  /// give >90% detection in the paper.
  [[nodiscard]] double remeet_probability(Duration window) const;

  [[nodiscard]] Duration trace_span() const { return span_; }

 private:
  std::size_t contact_count_ = 0;
  Samples durations_;
  Samples inter_contacts_;  // seconds
  std::map<PairKey, std::size_t> per_pair_contacts_;
  std::vector<std::pair<double, bool>> remeet_gaps_;  // (gap seconds, censored)
  Duration span_ = Duration::zero();
};

}  // namespace g2g::trace
